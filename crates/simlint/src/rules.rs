//! The lint rules, as passes over the token stream.

use std::path::Path;

use crate::lexer::{Lexed, Token};
use crate::{Rule, Violation};

/// `std::sync` leaves that are forbidden in simulation code (`Arc` and
/// `Weak` are sharing, not blocking, and stay legal).
const FORBIDDEN_SYNC: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "OnceCell", "mpsc", "atomic", "*",
];

/// Identifiers that imply an external or entropy-seeded RNG.
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "ThreadRng",
    "StdRng",
    "SmallRng",
    "getrandom",
];

/// Runs every rule over a lexed file.
pub fn check(file: &Path, lexed: &Lexed) -> Vec<Violation> {
    let mut found: Vec<Violation> = Vec::new();
    let toks = &lexed.tokens;

    check_std_paths(toks, &mut found);
    check_idents(toks, &mut found);
    check_unseeded_rng(toks, &mut found);

    // Apply justified allow directives (same line or the line above the
    // violation), then report bare ones.
    found.retain(|v| {
        !lexed.allows.iter().any(|a| {
            a.justified
                && a.rule == v.rule.name()
                && (a.line == v.line || a.line + 1 == v.line)
        })
    });
    for a in &lexed.allows {
        if !a.justified {
            found.push(Violation {
                file: file.to_path_buf(),
                line: a.line,
                rule: Rule::BareAllow,
                message: format!("allow({}) without a justification", a.rule),
            });
        }
    }

    for v in &mut found {
        v.file = file.to_path_buf();
    }
    found.sort_by_key(|v| (v.line, v.rule));
    found.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    found
}

fn violation(found: &mut Vec<Violation>, line: u32, rule: Rule, message: String) {
    found.push(Violation {
        file: Default::default(),
        line,
        rule,
        message,
    });
}

/// Checks `std::<module>` paths: `std::time::{Instant, SystemTime}`,
/// `std::thread`, and `std::sync::{forbidden}`.
fn check_std_paths(toks: &[Token], found: &mut Vec<Violation>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident && toks[i].text == "std" {
            if let Some((seg, leaves, next)) = std_path(toks, i) {
                match seg.text.as_str() {
                    "time" => {
                        let bad: Vec<&(String, u32)> = leaves
                            .iter()
                            .filter(|(l, _)| l == "Instant" || l == "SystemTime" || l == "*")
                            .collect();
                        if leaves.is_empty() {
                            violation(
                                found,
                                seg.line,
                                Rule::WallClock,
                                "import of std::time (host wall-clock module)".into(),
                            );
                        }
                        for (leaf, line) in bad {
                            violation(
                                found,
                                *line,
                                Rule::WallClock,
                                format!("use of std::time::{leaf}"),
                            );
                        }
                    }
                    "thread" => violation(
                        found,
                        seg.line,
                        Rule::HostThread,
                        "use of std::thread (host threads)".into(),
                    ),
                    "sync" => {
                        let forbidden = |l: &str| {
                            FORBIDDEN_SYNC.contains(&l) || l.starts_with("Atomic")
                        };
                        if leaves.is_empty() {
                            violation(
                                found,
                                seg.line,
                                Rule::StdSync,
                                "bare import of std::sync".into(),
                            );
                        }
                        for (leaf, line) in leaves.iter().filter(|(l, _)| forbidden(l)) {
                            violation(
                                found,
                                *line,
                                Rule::StdSync,
                                format!("use of std::sync::{leaf}"),
                            );
                        }
                    }
                    _ => {}
                }
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

/// Parses a `std::<seg>` path at `i`, returning the segment token, the
/// leaf identifiers that follow (single ident, or the flattened contents
/// of a `{...}` group), and the index just past the parsed tokens.
type PathLeaves = Vec<(String, u32)>;

fn std_path(toks: &[Token], i: usize) -> Option<(&Token, PathLeaves, usize)> {
    if toks.get(i + 1)?.text != "::" {
        return None;
    }
    let seg = toks.get(i + 2)?;
    if !seg.is_ident {
        return None;
    }
    let mut leaves = Vec::new();
    let mut next = i + 3;
    if toks.get(i + 3).map(|t| t.text.as_str()) == Some("::") {
        match toks.get(i + 4) {
            Some(t) if t.text == "{" => {
                // Flatten every identifier (and `*`) in the group,
                // including nested paths like `atomic::{AtomicU64}`.
                let mut depth = 1usize;
                let mut j = i + 5;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "*" => leaves.push(("*".into(), toks[j].line)),
                        t if toks[j].is_ident && t != "self" && t != "as" => {
                            leaves.push((t.to_string(), toks[j].line));
                        }
                        _ => {}
                    }
                    j += 1;
                }
                next = j;
            }
            Some(t) if t.is_ident || t.text == "*" => {
                leaves.push((t.text.clone(), t.line));
                next = i + 5;
            }
            _ => {}
        }
    }
    Some((seg, leaves, next))
}

/// Flags nondeterministic collections and external-RNG identifiers.
fn check_idents(toks: &[Token], found: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => violation(
                found,
                t.line,
                Rule::HashCollection,
                format!("use of {} (nondeterministic iteration order)", t.text),
            ),
            "rand" if toks.get(i + 1).map(|n| n.text.as_str()) == Some("::") => violation(
                found,
                t.line,
                Rule::ExternalRng,
                "use of the rand crate".into(),
            ),
            name if RNG_IDENTS.contains(&name) => violation(
                found,
                t.line,
                Rule::ExternalRng,
                format!("use of external/entropy RNG `{name}`"),
            ),
            _ => {}
        }
    }
}

/// Flags constructor-shaped functions in `impl` blocks of RNG-named
/// types (`*Rng*`, `*Random*`) that take no `seed`-named parameter.
fn check_unseeded_rng(toks: &[Token], found: &mut Vec<Violation>) {
    let mut depth: i64 = 0;
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                if let Some(target) = pending_impl.take() {
                    impl_stack.push((target, depth));
                }
            }
            "}" => {
                depth -= 1;
                while impl_stack.last().is_some_and(|&(_, d)| d > depth) {
                    impl_stack.pop();
                }
            }
            "impl" if t.is_ident => {
                pending_impl = impl_target(toks, i);
            }
            "fn" if t.is_ident => {
                let in_rng_impl = impl_stack.last().is_some_and(|(target, d)| {
                    *d == depth && {
                        let lower = target.to_lowercase();
                        lower.contains("rng") || lower.contains("random")
                    }
                });
                if in_rng_impl {
                    if let Some(v) = unseeded_ctor(toks, i) {
                        found.push(v);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Extracts the self type name of an `impl` header starting at `i`
/// (first identifier after `for` if present, else the first identifier
/// after the generics).
fn impl_target(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip `<...>` generic parameters.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 1i32;
        j += 1;
        while j < toks.len() && angle > 0 {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        let t = &toks[j];
        if t.is_ident {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                break;
            } else if saw_for {
                if after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
            } else if first.is_none() {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    after_for.or(first)
}

/// Checks the `fn` at `i`: returns a violation if it is a seedless
/// constructor (`new`, `default`, `new_*`, `from_*`).
fn unseeded_ctor(toks: &[Token], i: usize) -> Option<Violation> {
    let name_tok = toks.get(i + 1)?;
    if !name_tok.is_ident {
        return None;
    }
    let name = name_tok.text.as_str();
    let ctor = name == "new"
        || name == "default"
        || name.starts_with("new_")
        || name.starts_with("from_");
    if !ctor {
        return None;
    }
    // Skip optional generics, then scan the parameter list.
    let mut j = i + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 1i32;
        j += 1;
        while j < toks.len() && angle > 0 {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut paren = 1i32;
    j += 1;
    let mut has_seed = false;
    while j < toks.len() && paren > 0 {
        match toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            t if toks[j].is_ident && t.to_lowercase().contains("seed") => has_seed = true,
            _ => {}
        }
        j += 1;
    }
    if has_seed {
        return None;
    }
    Some(Violation {
        file: Default::default(),
        line: name_tok.line,
        rule: Rule::UnseededRng,
        message: format!("RNG constructor `{name}` has no explicit seed parameter"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;
    use std::path::PathBuf;

    fn rules_hit(src: &str) -> Vec<Rule> {
        lint_source(&PathBuf::from("test.rs"), src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn flags_wall_clock() {
        assert_eq!(
            rules_hit("use std::time::Instant;"),
            vec![Rule::WallClock]
        );
        assert_eq!(
            rules_hit("let t = std::time::SystemTime::now();"),
            vec![Rule::WallClock]
        );
        assert_eq!(rules_hit("use std::time::{Duration, Instant};").len(), 1);
        assert!(rules_hit("use std::time::Duration;").is_empty());
    }

    #[test]
    fn flags_host_thread() {
        assert_eq!(rules_hit("use std::thread;"), vec![Rule::HostThread]);
        assert_eq!(
            rules_hit("std::thread::spawn(|| {});"),
            vec![Rule::HostThread]
        );
    }

    #[test]
    fn flags_std_sync_but_not_arc() {
        assert_eq!(
            rules_hit("use std::sync::{Arc, Mutex};"),
            vec![Rule::StdSync]
        );
        assert!(rules_hit("use std::sync::Arc;").is_empty());
        assert_eq!(
            rules_hit("use std::sync::atomic::AtomicU64;"),
            vec![Rule::StdSync]
        );
        assert_eq!(
            rules_hit("use std::sync::{Arc, atomic::{AtomicBool, Ordering}};"),
            vec![Rule::StdSync]
        );
    }

    #[test]
    fn flags_hash_collections() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec![Rule::HashCollection]
        );
        assert_eq!(
            rules_hit("let s: HashSet<u64> = HashSet::new();"),
            vec![Rule::HashCollection]
        );
        assert!(rules_hit("use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn flags_external_rng() {
        assert_eq!(rules_hit("let r = rand::thread_rng();").len(), 1);
        assert_eq!(
            rules_hit("let r = SmallRng::from_entropy();"),
            vec![Rule::ExternalRng]
        );
    }

    #[test]
    fn flags_unseeded_rng_ctor() {
        let src = "struct MyRng { s: u64 }\nimpl MyRng {\n pub fn new() -> Self { MyRng { s: 0 } }\n}";
        assert_eq!(rules_hit(src), vec![Rule::UnseededRng]);
        let seeded = "struct MyRng { s: u64 }\nimpl MyRng {\n pub fn new(seed: u64) -> Self { MyRng { s: seed } }\n}";
        assert!(rules_hit(seeded).is_empty());
        let default_impl =
            "struct PadRandom;\nimpl Default for PadRandom {\n fn default() -> Self { PadRandom }\n}";
        assert_eq!(rules_hit(default_impl), vec![Rule::UnseededRng]);
        // Non-RNG types may have seedless constructors.
        assert!(rules_hit("struct Tlb;\nimpl Tlb { pub fn new() -> Self { Tlb } }").is_empty());
    }

    #[test]
    fn justified_allow_suppresses() {
        let same_line =
            "use std::sync::Mutex; // simlint: allow(std-sync): waker contract requires Sync";
        assert!(rules_hit(same_line).is_empty());
        let line_above =
            "// simlint: allow(hash-collection): keyed lookups only, never iterated\nuse std::collections::HashMap;";
        assert!(rules_hit(line_above).is_empty());
    }

    #[test]
    fn bare_allow_is_reported_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-collection)";
        let hits = rules_hit(src);
        assert!(hits.contains(&Rule::HashCollection));
        assert!(hits.contains(&Rule::BareAllow));
    }

    #[test]
    fn wrong_rule_allow_does_not_suppress() {
        let src = "use std::thread; // simlint: allow(wall-clock): mislabeled";
        assert_eq!(rules_hit(src), vec![Rule::HostThread]);
    }

    #[test]
    fn violations_in_comments_and_strings_ignored() {
        assert!(rules_hit("// std::thread::spawn\nlet s = \"HashMap\";").is_empty());
    }
}
