//! The lint rules, as passes over the token stream.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::{Lexed, Token};
use crate::{Rule, Violation};

/// `std::sync` leaves that are forbidden in simulation code (`Arc` and
/// `Weak` are sharing, not blocking, and stay legal).
const FORBIDDEN_SYNC: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "OnceCell", "mpsc", "atomic", "*",
];

/// Stats structs whose measurement fields must all be reachable from
/// `MetricsRegistry::snapshot`. A counter missing from the snapshot
/// silently escapes the measurement windows (the PR 5 bug class: it
/// keeps warmup samples and ignores tail censoring).
const STATS_STRUCTS: &[&str] = &[
    "EngineStats",
    "FaultBreakdown",
    "NicStats",
    "IpiStats",
    "AccountingStats",
];

/// Field types that carry measurement state (possibly nested in a
/// wrapper, e.g. `RefCell<TimeStat>`).
const STAT_FIELD_TYPES: &[&str] = &["Counter", "TimeStat", "Histogram"];

/// Files on the simulator's measured hot paths (the per-poll executor
/// loop, the per-access TLB probe, the per-page engine maps), where
/// ordered maps are banned outright: the slab refactor (DESIGN.md §11)
/// bought its events/sec there, and a `BTreeMap` creeping back in would
/// silently give it up. Deliberate exceptions carry a justified
/// `allow(hot-path)`.
const HOT_PATH_FILES: &[&str] = &["executor.rs", "tlb.rs", "machine.rs"];

/// Identifiers that imply an external or entropy-seeded RNG.
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "ThreadRng",
    "StdRng",
    "SmallRng",
    "getrandom",
];

/// Runs every rule over a lexed file.
pub fn check(file: &Path, lexed: &Lexed) -> Vec<Violation> {
    let mut found: Vec<Violation> = Vec::new();
    let toks = &lexed.tokens;

    check_std_paths(toks, &mut found);
    check_idents(toks, &mut found);
    check_unseeded_rng(toks, &mut found);
    check_hot_path(file, toks, &mut found);

    // Apply justified allow directives (same line or the line above the
    // violation), then report bare ones.
    found.retain(|v| {
        !lexed.allows.iter().any(|a| {
            a.justified
                && a.rule == v.rule.name()
                && (a.line == v.line || a.line + 1 == v.line)
        })
    });
    for a in &lexed.allows {
        if !a.justified {
            found.push(Violation {
                file: file.to_path_buf(),
                line: a.line,
                rule: Rule::BareAllow,
                message: format!("allow({}) without a justification", a.rule),
            });
        }
    }

    for v in &mut found {
        v.file = file.to_path_buf();
    }
    found.sort_by_key(|v| (v.line, v.rule));
    found.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    found
}

fn violation(found: &mut Vec<Violation>, line: u32, rule: Rule, message: String) {
    found.push(Violation {
        file: Default::default(),
        line,
        rule,
        message,
    });
}

/// Checks `std::<module>` paths: `std::time::{Instant, SystemTime}`,
/// `std::thread`, and `std::sync::{forbidden}`.
fn check_std_paths(toks: &[Token], found: &mut Vec<Violation>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident && toks[i].text == "std" {
            if let Some((seg, leaves, next)) = std_path(toks, i) {
                match seg.text.as_str() {
                    "time" => {
                        let bad: Vec<&(String, u32)> = leaves
                            .iter()
                            .filter(|(l, _)| l == "Instant" || l == "SystemTime" || l == "*")
                            .collect();
                        if leaves.is_empty() {
                            violation(
                                found,
                                seg.line,
                                Rule::WallClock,
                                "import of std::time (host wall-clock module)".into(),
                            );
                        }
                        for (leaf, line) in bad {
                            violation(
                                found,
                                *line,
                                Rule::WallClock,
                                format!("use of std::time::{leaf}"),
                            );
                        }
                    }
                    "thread" => violation(
                        found,
                        seg.line,
                        Rule::HostThread,
                        "use of std::thread (host threads)".into(),
                    ),
                    "sync" => {
                        let forbidden = |l: &str| {
                            FORBIDDEN_SYNC.contains(&l) || l.starts_with("Atomic")
                        };
                        if leaves.is_empty() {
                            violation(
                                found,
                                seg.line,
                                Rule::StdSync,
                                "bare import of std::sync".into(),
                            );
                        }
                        for (leaf, line) in leaves.iter().filter(|(l, _)| forbidden(l)) {
                            violation(
                                found,
                                *line,
                                Rule::StdSync,
                                format!("use of std::sync::{leaf}"),
                            );
                        }
                    }
                    _ => {}
                }
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

/// Parses a `std::<seg>` path at `i`, returning the segment token, the
/// leaf identifiers that follow (single ident, or the flattened contents
/// of a `{...}` group), and the index just past the parsed tokens.
type PathLeaves = Vec<(String, u32)>;

fn std_path(toks: &[Token], i: usize) -> Option<(&Token, PathLeaves, usize)> {
    if toks.get(i + 1)?.text != "::" {
        return None;
    }
    let seg = toks.get(i + 2)?;
    if !seg.is_ident {
        return None;
    }
    let mut leaves = Vec::new();
    let mut next = i + 3;
    if toks.get(i + 3).map(|t| t.text.as_str()) == Some("::") {
        match toks.get(i + 4) {
            Some(t) if t.text == "{" => {
                // Flatten every identifier (and `*`) in the group,
                // including nested paths like `atomic::{AtomicU64}`.
                let mut depth = 1usize;
                let mut j = i + 5;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "*" => leaves.push(("*".into(), toks[j].line)),
                        t if toks[j].is_ident && t != "self" && t != "as" => {
                            leaves.push((t.to_string(), toks[j].line));
                        }
                        _ => {}
                    }
                    j += 1;
                }
                next = j;
            }
            Some(t) if t.is_ident || t.text == "*" => {
                leaves.push((t.text.clone(), t.line));
                next = i + 5;
            }
            _ => {}
        }
    }
    Some((seg, leaves, next))
}

/// Flags nondeterministic collections and external-RNG identifiers.
fn check_idents(toks: &[Token], found: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => violation(
                found,
                t.line,
                Rule::HashCollection,
                format!("use of {} (nondeterministic iteration order)", t.text),
            ),
            "rand" if toks.get(i + 1).map(|n| n.text.as_str()) == Some("::") => violation(
                found,
                t.line,
                Rule::ExternalRng,
                "use of the rand crate".into(),
            ),
            name if RNG_IDENTS.contains(&name) => violation(
                found,
                t.line,
                Rule::ExternalRng,
                format!("use of external/entropy RNG `{name}`"),
            ),
            _ => {}
        }
    }
}

/// Flags ordered maps in the designated hot-path files (matched by file
/// name, so the rule follows the file wherever its crate lives).
fn check_hot_path(file: &Path, toks: &[Token], found: &mut Vec<Violation>) {
    let hot = file
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| HOT_PATH_FILES.contains(&n));
    if !hot {
        return;
    }
    for t in toks {
        if t.is_ident && (t.text == "BTreeMap" || t.text == "BTreeSet") {
            violation(
                found,
                t.line,
                Rule::HotPath,
                format!("use of {} in hot-path file", t.text),
            );
        }
    }
}

/// Flags constructor-shaped functions in `impl` blocks of RNG-named
/// types (`*Rng*`, `*Random*`) that take no `seed`-named parameter.
fn check_unseeded_rng(toks: &[Token], found: &mut Vec<Violation>) {
    let mut depth: i64 = 0;
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                if let Some(target) = pending_impl.take() {
                    impl_stack.push((target, depth));
                }
            }
            "}" => {
                depth -= 1;
                while impl_stack.last().is_some_and(|&(_, d)| d > depth) {
                    impl_stack.pop();
                }
            }
            "impl" if t.is_ident => {
                pending_impl = impl_target(toks, i);
            }
            "fn" if t.is_ident => {
                let in_rng_impl = impl_stack.last().is_some_and(|(target, d)| {
                    *d == depth && {
                        let lower = target.to_lowercase();
                        lower.contains("rng") || lower.contains("random")
                    }
                });
                if in_rng_impl {
                    if let Some(v) = unseeded_ctor(toks, i) {
                        found.push(v);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Extracts the self type name of an `impl` header starting at `i`
/// (first identifier after `for` if present, else the first identifier
/// after the generics).
fn impl_target(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip `<...>` generic parameters.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 1i32;
        j += 1;
        while j < toks.len() && angle > 0 {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        let t = &toks[j];
        if t.is_ident {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                break;
            } else if saw_for {
                if after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
            } else if first.is_none() {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    after_for.or(first)
}

/// Checks the `fn` at `i`: returns a violation if it is a seedless
/// constructor (`new`, `default`, `new_*`, `from_*`).
fn unseeded_ctor(toks: &[Token], i: usize) -> Option<Violation> {
    let name_tok = toks.get(i + 1)?;
    if !name_tok.is_ident {
        return None;
    }
    let name = name_tok.text.as_str();
    let ctor = name == "new"
        || name == "default"
        || name.starts_with("new_")
        || name.starts_with("from_");
    if !ctor {
        return None;
    }
    // Skip optional generics, then scan the parameter list.
    let mut j = i + 2;
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 1i32;
        j += 1;
        while j < toks.len() && angle > 0 {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut paren = 1i32;
    j += 1;
    let mut has_seed = false;
    while j < toks.len() && paren > 0 {
        match toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            t if toks[j].is_ident && t.to_lowercase().contains("seed") => has_seed = true,
            _ => {}
        }
        j += 1;
    }
    if has_seed {
        return None;
    }
    Some(Violation {
        file: Default::default(),
        line: name_tok.line,
        rule: Rule::UnseededRng,
        message: format!("RNG constructor `{name}` has no explicit seed parameter"),
    })
}

/// One `Counter`/`TimeStat`/`Histogram` field declared in a monitored
/// stats struct.
struct StatField {
    /// The declaring struct's name.
    strukt: &'static str,
    /// Field identifier.
    name: String,
    /// The stat type that matched inside the field's type tokens.
    ty: String,
    /// 1-based line of the field name.
    line: u32,
    /// Index of the field-name token in the file's token stream.
    token_idx: usize,
}

/// Scans a token stream for stat fields of the monitored structs.
fn stat_fields(toks: &[Token]) -> Vec<StatField> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_struct = toks[i].is_ident && toks[i].text == "struct";
        let strukt = is_struct
            .then(|| toks.get(i + 1))
            .flatten()
            .filter(|t| t.is_ident)
            .and_then(|t| STATS_STRUCTS.iter().find(|&&s| s == t.text).copied());
        let Some(strukt) = strukt else {
            i += 1;
            continue;
        };
        // Find the body's opening brace; bail on tuple/unit structs.
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].text.as_str(), "{" | ";" | "(") {
            j += 1;
        }
        if toks.get(j).map(|t| t.text.as_str()) != Some("{") {
            i = j;
            continue;
        }
        j += 1;
        let mut brace = 1i32;
        while j < toks.len() && brace > 0 {
            match toks[j].text.as_str() {
                "{" => brace += 1,
                "}" => brace -= 1,
                // A field is `name :` at body depth (the lexer merges
                // `::` into one token, so a lone `:` is a real colon).
                ":" if brace == 1 && j > 0 && toks[j - 1].is_ident => {
                    let name_idx = j - 1;
                    // Scan the type until a `,` (or the closing brace)
                    // at zero bracket nesting — `BTreeMap<K, V>` commas
                    // must not end the field early.
                    let mut nest = 0i32;
                    let mut k = j + 1;
                    let mut ty_hit: Option<String> = None;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "<" | "(" | "[" => nest += 1,
                            ">" | ")" | "]" => nest -= 1,
                            "," | "}" if nest <= 0 => break,
                            t if toks[k].is_ident && STAT_FIELD_TYPES.contains(&t) => {
                                ty_hit.get_or_insert_with(|| t.to_string());
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(ty) = ty_hit {
                        out.push(StatField {
                            strukt,
                            name: toks[name_idx].text.clone(),
                            ty,
                            line: toks[name_idx].line,
                            token_idx: name_idx,
                        });
                    }
                    j = k;
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
    out
}

/// The cross-file `stats-registration` pass: every stat field declared
/// in a monitored struct must be referenced (by field name) in a
/// *registry anchor* — a file in the batch mentioning both
/// `MetricsRegistry` and `snapshot`. Batches with no anchor at all are
/// skipped: a lone crate without the metrics façade has nothing to
/// register against.
pub fn stats_registration(files: &[(PathBuf, Lexed)]) -> Vec<Violation> {
    let decls: Vec<Vec<StatField>> = files.iter().map(|(_, l)| stat_fields(&l.tokens)).collect();

    // Idents visible from anchors. A field's own declaration inside an
    // anchor file does not count as a reference — exclude those exact
    // tokens, so declaring a struct next to the registry cannot
    // vacuously satisfy the rule.
    let mut registered: BTreeSet<&str> = BTreeSet::new();
    let mut any_anchor = false;
    for ((_, lexed), fields) in files.iter().zip(&decls) {
        let has = |name: &str| lexed.tokens.iter().any(|t| t.is_ident && t.text == name);
        if !has("MetricsRegistry") || !has("snapshot") {
            continue;
        }
        any_anchor = true;
        let decl_idx: BTreeSet<usize> = fields.iter().map(|f| f.token_idx).collect();
        for (idx, t) in lexed.tokens.iter().enumerate() {
            if t.is_ident && !decl_idx.contains(&idx) {
                registered.insert(&t.text);
            }
        }
    }
    if !any_anchor {
        return Vec::new();
    }

    let mut out = Vec::new();
    for ((path, lexed), fields) in files.iter().zip(&decls) {
        for f in fields {
            if registered.contains(f.name.as_str()) {
                continue;
            }
            let allowed = lexed.allows.iter().any(|a| {
                a.justified
                    && a.rule == Rule::StatsRegistration.name()
                    && (a.line == f.line || a.line + 1 == f.line)
            });
            if allowed {
                continue;
            }
            out.push(Violation {
                file: path.clone(),
                line: f.line,
                rule: Rule::StatsRegistration,
                message: format!(
                    "{} field `{}.{}` is never captured by MetricsRegistry::snapshot",
                    f.ty, f.strukt, f.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;
    use std::path::PathBuf;

    fn rules_hit(src: &str) -> Vec<Rule> {
        lint_source(&PathBuf::from("test.rs"), src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn flags_wall_clock() {
        assert_eq!(
            rules_hit("use std::time::Instant;"),
            vec![Rule::WallClock]
        );
        assert_eq!(
            rules_hit("let t = std::time::SystemTime::now();"),
            vec![Rule::WallClock]
        );
        assert_eq!(rules_hit("use std::time::{Duration, Instant};").len(), 1);
        assert!(rules_hit("use std::time::Duration;").is_empty());
    }

    #[test]
    fn flags_host_thread() {
        assert_eq!(rules_hit("use std::thread;"), vec![Rule::HostThread]);
        assert_eq!(
            rules_hit("std::thread::spawn(|| {});"),
            vec![Rule::HostThread]
        );
    }

    #[test]
    fn flags_std_sync_but_not_arc() {
        assert_eq!(
            rules_hit("use std::sync::{Arc, Mutex};"),
            vec![Rule::StdSync]
        );
        assert!(rules_hit("use std::sync::Arc;").is_empty());
        assert_eq!(
            rules_hit("use std::sync::atomic::AtomicU64;"),
            vec![Rule::StdSync]
        );
        assert_eq!(
            rules_hit("use std::sync::{Arc, atomic::{AtomicBool, Ordering}};"),
            vec![Rule::StdSync]
        );
    }

    #[test]
    fn flags_hash_collections() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec![Rule::HashCollection]
        );
        assert_eq!(
            rules_hit("let s: HashSet<u64> = HashSet::new();"),
            vec![Rule::HashCollection]
        );
        assert!(rules_hit("use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn flags_external_rng() {
        assert_eq!(rules_hit("let r = rand::thread_rng();").len(), 1);
        assert_eq!(
            rules_hit("let r = SmallRng::from_entropy();"),
            vec![Rule::ExternalRng]
        );
    }

    #[test]
    fn flags_unseeded_rng_ctor() {
        let src = "struct MyRng { s: u64 }\nimpl MyRng {\n pub fn new() -> Self { MyRng { s: 0 } }\n}";
        assert_eq!(rules_hit(src), vec![Rule::UnseededRng]);
        let seeded = "struct MyRng { s: u64 }\nimpl MyRng {\n pub fn new(seed: u64) -> Self { MyRng { s: seed } }\n}";
        assert!(rules_hit(seeded).is_empty());
        let default_impl =
            "struct PadRandom;\nimpl Default for PadRandom {\n fn default() -> Self { PadRandom }\n}";
        assert_eq!(rules_hit(default_impl), vec![Rule::UnseededRng]);
        // Non-RNG types may have seedless constructors.
        assert!(rules_hit("struct Tlb;\nimpl Tlb { pub fn new() -> Self { Tlb } }").is_empty());
    }

    #[test]
    fn hot_path_bans_ordered_maps_by_file_name() {
        let src = "use std::collections::BTreeMap;\nlet s: BTreeSet<u64> = BTreeSet::new();";
        for name in ["executor.rs", "tlb.rs", "machine.rs"] {
            let hits = lint_source(&PathBuf::from(name), src);
            // One per line: same-line same-rule hits dedup.
            assert_eq!(hits.len(), 2, "{name}: {hits:#?}");
            assert!(hits.iter().all(|v| v.rule == Rule::HotPath), "{hits:#?}");
        }
        // Same tokens elsewhere are legal (ordered maps are the sanctioned
        // deterministic collection off the hot paths).
        assert!(lint_source(&PathBuf::from("policy.rs"), src).is_empty());
        // Comments and strings never trip the rule.
        let doc = "// converted from `BTreeMap` by the slab refactor\nlet x = 1;";
        assert!(lint_source(&PathBuf::from("tlb.rs"), doc).is_empty());
    }

    #[test]
    fn hot_path_honors_justified_allow() {
        let src = "// simlint: allow(hot-path): cold shutdown path, never polled per event\nuse std::collections::BTreeMap;";
        assert!(lint_source(&PathBuf::from("executor.rs"), src).is_empty());
        let bare = "use std::collections::BTreeMap; // simlint: allow(hot-path)";
        let hits = lint_source(&PathBuf::from("executor.rs"), bare);
        assert!(hits.iter().any(|v| v.rule == Rule::HotPath));
        assert!(hits.iter().any(|v| v.rule == Rule::BareAllow));
    }

    #[test]
    fn justified_allow_suppresses() {
        let same_line =
            "use std::sync::Mutex; // simlint: allow(std-sync): waker contract requires Sync";
        assert!(rules_hit(same_line).is_empty());
        let line_above =
            "// simlint: allow(hash-collection): keyed lookups only, never iterated\nuse std::collections::HashMap;";
        assert!(rules_hit(line_above).is_empty());
    }

    #[test]
    fn bare_allow_is_reported_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-collection)";
        let hits = rules_hit(src);
        assert!(hits.contains(&Rule::HashCollection));
        assert!(hits.contains(&Rule::BareAllow));
    }

    #[test]
    fn wrong_rule_allow_does_not_suppress() {
        let src = "use std::thread; // simlint: allow(wall-clock): mislabeled";
        assert_eq!(rules_hit(src), vec![Rule::HostThread]);
    }

    #[test]
    fn violations_in_comments_and_strings_ignored() {
        assert!(rules_hit("// std::thread::spawn\nlet s = \"HashMap\";").is_empty());
    }

    /// Batch-lints named in-memory files (for the cross-file rule).
    fn batch(files: &[(&str, &str)]) -> Vec<Violation> {
        let lexed: Vec<_> = files
            .iter()
            .map(|(name, src)| (PathBuf::from(name), crate::lexer::lex(src)))
            .collect();
        stats_registration(&lexed)
    }

    const REGISTRY: &str = "pub struct MetricsRegistry;\nimpl MetricsRegistry {\n pub fn snapshot(&self) -> u64 { self.engine.hits.get() }\n}";

    #[test]
    fn stats_registration_flags_an_orphan_field() {
        let stats = "pub struct EngineStats {\n pub hits: Counter,\n pub orphan_counter: Counter,\n}";
        let hits = batch(&[("stats.rs", stats), ("metrics.rs", REGISTRY)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, Rule::StatsRegistration);
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("EngineStats.orphan_counter"), "{}", hits[0].message);
    }

    #[test]
    fn stats_registration_sees_wrapped_and_generic_types() {
        // RefCell<TimeStat> is a stat; a BTreeMap's inner comma must not
        // truncate the field list; non-stat fields are ignored.
        let stats = "pub struct EngineStats {\n pub map: BTreeMap<u64, u64>,\n pub wait: RefCell<TimeStat>,\n pub lat: Histogram,\n}";
        let hits = batch(&[("stats.rs", stats), ("metrics.rs", REGISTRY)]);
        let named: Vec<_> = hits.iter().map(|v| v.message.clone()).collect();
        assert_eq!(hits.len(), 2, "{named:?}");
        assert!(named[0].contains("TimeStat field `EngineStats.wait`"));
        assert!(named[1].contains("Histogram field `EngineStats.lat`"));
    }

    #[test]
    fn stats_registration_is_silent_without_an_anchor() {
        let stats = "pub struct NicStats { pub orphan: Counter }";
        assert!(batch(&[("link.rs", stats)]).is_empty());
    }

    #[test]
    fn stats_registration_ignores_unmonitored_structs() {
        let stats = "pub struct ScratchStats { pub orphan: Counter }";
        assert!(batch(&[("x.rs", stats), ("metrics.rs", REGISTRY)]).is_empty());
    }

    #[test]
    fn stats_registration_declaration_in_anchor_does_not_self_satisfy() {
        // Struct declared in the SAME file as the registry: the field's
        // own declaration token must not count as a reference.
        let src = format!(
            "pub struct EngineStats {{\n pub hits: Counter,\n pub orphan_counter: Counter,\n}}\n{REGISTRY}"
        );
        let hits = batch(&[("metrics.rs", &src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("orphan_counter"));
    }

    #[test]
    fn stats_registration_honors_justified_allow() {
        let stats = "pub struct EngineStats {\n // simlint: allow(stats-registration): debug-only counter, not an experiment metric\n pub orphan_counter: Counter,\n pub hits: Counter,\n}";
        assert!(batch(&[("stats.rs", stats), ("metrics.rs", REGISTRY)]).is_empty());
    }
}
