//! Fixture tests: the seeded violation file trips every rule; the clean
//! fixture (with a justified allow) trips none.

use std::path::{Path, PathBuf};

use simlint::{lint_file, lint_tree, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn violation_fixture_trips_every_rule() {
    // `hot-path` keys on the file name, so it has its own fixture; the
    // seeded violations file covers every other rule.
    let mut violations = lint_file(&fixture("violations.rs")).expect("fixture readable");
    violations.extend(lint_file(&fixture("hotpath/executor.rs")).expect("fixture readable"));
    for &rule in Rule::all() {
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "rule {} not tripped; got: {violations:#?}",
            rule.name()
        );
    }
}

/// The hot-path fixture pair: an ordered map in an executor-named file
/// fails, and the justified `allow(hot-path)` escape hatch passes.
#[test]
fn hot_path_fixture_pair() {
    let bad = lint_file(&fixture("hotpath/executor.rs")).expect("fixture readable");
    assert!(
        bad.iter().all(|v| v.rule == Rule::HotPath) && bad.len() == 2,
        "{bad:#?}"
    );
    let ok = lint_file(&fixture("hotpath_ok/machine.rs")).expect("fixture readable");
    assert!(ok.is_empty(), "unexpected: {ok:#?}");
}

#[test]
fn violation_lines_are_exact() {
    let violations = lint_file(&fixture("violations.rs")).expect("fixture readable");
    let at = |rule: Rule| {
        violations
            .iter()
            .find(|v| v.rule == rule)
            .map(|v| v.line)
            .unwrap_or(0)
    };
    assert_eq!(at(Rule::HashCollection), 8);
    assert_eq!(at(Rule::StdSync), 9);
    assert_eq!(at(Rule::HostThread), 10);
    assert_eq!(at(Rule::WallClock), 11);
    assert_eq!(at(Rule::ExternalRng), 14);
    assert_eq!(at(Rule::UnseededRng), 24);
    assert_eq!(at(Rule::BareAllow), 30);
    assert_eq!(at(Rule::StatsRegistration), 39);
}

/// The stats-registration fixture pair: the ok half (snapshot captures
/// every field) is clean, the missing half trips exactly on the field
/// that escaped the registry.
#[test]
fn stats_fixture_pair() {
    let ok = lint_file(&fixture("stats_ok.rs")).expect("fixture readable");
    assert!(ok.is_empty(), "unexpected: {ok:#?}");
    let missing = lint_file(&fixture("stats_missing.rs")).expect("fixture readable");
    assert_eq!(missing.len(), 1, "{missing:#?}");
    assert_eq!(missing[0].rule, Rule::StatsRegistration);
    assert!(
        missing[0].message.contains("NicStats.lost_counter"),
        "{}",
        missing[0].message
    );
}

#[test]
fn clean_fixture_is_clean() {
    let violations = lint_file(&fixture("clean.rs")).expect("fixture readable");
    assert!(violations.is_empty(), "unexpected: {violations:#?}");
}

#[test]
fn lint_tree_visits_fixtures_in_stable_order() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let a = lint_tree(&dir).expect("fixtures dir readable");
    let b = lint_tree(&dir).expect("fixtures dir readable");
    assert!(!a.is_empty());
    assert_eq!(a, b, "reports must be stable");
}
