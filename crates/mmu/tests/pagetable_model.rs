//! Model-based randomized tests: the radix page table must behave
//! exactly like a flat map, and the TLB like a bounded set.

use std::collections::{BTreeMap, BTreeSet};

use mage_mmu::{PageTable, Pte, Tlb};
use mage_sim::rng::{self, SplitMix64};

/// Arbitrary interleavings of set/update/get agree with a flat-map model
/// across the whole 36-bit VPN space.
#[test]
fn pagetable_matches_flat_map() {
    let rng = SplitMix64::new(0x9A6E_7AB1);
    for _ in 0..32 {
        let pt = PageTable::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..1 + rng.next_below(299) {
            let op = rng.next_below(3);
            let vpn = rng.next_below(1 << 36);
            let val = rng.next_below(1 << 40);
            match op {
                0 => {
                    pt.set(vpn, Pte(val));
                    model.insert(vpn, val);
                }
                1 => {
                    let old = pt.update(vpn, |p| Pte(p.0 ^ val));
                    let entry = model.entry(vpn).or_insert(0);
                    assert_eq!(old.0, *entry);
                    *entry ^= val;
                }
                _ => {
                    let got = pt.get(vpn).0;
                    let want = model.get(&vpn).copied().unwrap_or(0);
                    assert_eq!(got, want);
                }
            }
        }
        for (vpn, want) in model {
            assert_eq!(pt.get(vpn).0, want);
        }
    }
}

/// The TLB never exceeds capacity, never reports an invalidated entry,
/// and always reports a just-filled entry (until evicted).
#[test]
fn tlb_is_a_bounded_set() {
    let rng = SplitMix64::new(0x71B0_5E77);
    for _ in 0..32 {
        let capacity = (1 + rng.next_below(63)) as usize;
        let tlb = Tlb::new(capacity, 99);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..1 + rng.next_below(299) {
            let op = rng.next_below(2);
            let vpn = rng.next_below(128);
            match op {
                0 => {
                    tlb.fill(vpn);
                    model.insert(vpn);
                    assert!(tlb.translates(vpn), "fill must take effect");
                }
                _ => {
                    tlb.invalidate(vpn);
                    model.remove(&vpn);
                    assert!(!tlb.translates(vpn), "invalidate must take effect");
                }
            }
            assert!(tlb.len() <= capacity);
            // Everything resident must be in the model (the reverse may
            // not hold because of capacity evictions).
            for v in 0..128u64 {
                if tlb.translates(v) {
                    assert!(model.contains(&v), "ghost entry {v}");
                }
            }
        }
    }
}

/// PTE flag operations are independent: toggling one bit never affects
/// the payload or the other bits.
#[test]
fn pte_bits_are_independent() {
    let rng = SplitMix64::new(0x97E0_0FF5);
    for _ in 0..256 {
        let payload = rng.next_below(1 << 50);
        let a = rng.next_below(2) == 1;
        let d = rng.next_below(2) == 1;
        let l = rng.next_below(2) == 1;
        let p = Pte::present(payload)
            .with_accessed(a)
            .with_dirty(d)
            .with_locked(l);
        assert_eq!(p.payload(), payload & ((1 << 52) - 1));
        assert_eq!(p.accessed(), a);
        assert_eq!(p.dirty(), d);
        assert_eq!(p.locked(), l);
        assert!(p.is_present());
        assert!(!p.is_remote());
    }
}

/// Adversarial lock-protocol fuzz: arbitrary interleavings of
/// `try_lock`/`unlock`/`set`/`update` agree with a shadow PTE per page.
/// `try_lock` succeeds exactly when the shadow is unlocked, and no
/// operation ever disturbs a byte it does not own.
#[test]
fn pte_lock_protocol_matches_model() {
    use std::collections::BTreeMap;

    for case in 0..16u64 {
        let stream = rng::stream(0xF0CC_ED00, case);
        let pt = PageTable::new();
        let mut shadow: BTreeMap<u64, Pte> = BTreeMap::new();
        for _ in 0..400 {
            // A small page pool maximizes operation collisions.
            let vpn = stream.next_below(32);
            let expect = shadow.get(&vpn).copied().unwrap_or(Pte::NONE);
            match stream.next_below(5) {
                0 => {
                    // Fresh mapping with random kind and flags.
                    let payload = stream.next_below(1 << 40);
                    let p = if stream.next_below(2) == 0 {
                        Pte::present(payload)
                            .with_accessed(stream.next_below(2) == 0)
                            .with_dirty(stream.next_below(2) == 0)
                    } else {
                        Pte::remote(payload)
                    };
                    pt.set(vpn, p);
                    shadow.insert(vpn, p);
                }
                1 => {
                    let won = pt.try_lock(vpn);
                    assert_eq!(
                        won,
                        !expect.locked(),
                        "case {case}: try_lock({vpn}) disagrees with shadow"
                    );
                    if won {
                        shadow.insert(vpn, expect.with_locked(true));
                    }
                }
                2 => {
                    if expect.locked() {
                        pt.unlock(vpn);
                        shadow.insert(vpn, expect.with_locked(false));
                    }
                }
                3 => {
                    let old = pt.update(vpn, |p| p.with_accessed(true));
                    assert_eq!(old.0, expect.0, "case {case}: update saw a stale PTE");
                    shadow.insert(vpn, expect.with_accessed(true));
                }
                _ => {
                    assert_eq!(pt.get(vpn).0, expect.0, "case {case}: get({vpn}) diverged");
                }
            }
            let now = shadow.get(&vpn).copied().unwrap_or(Pte::NONE);
            assert_eq!(pt.get(vpn).0, now.0, "case {case}: vpn {vpn} diverged");
        }
        // Final sweep: every touched page matches its shadow bit-for-bit.
        for (vpn, want) in shadow {
            let got = pt.get(vpn);
            assert_eq!(got.0, want.0);
            assert_eq!(got.locked(), want.locked());
        }
    }
}
