//! Model-based randomized tests: the radix page table must behave
//! exactly like a flat map, and the TLB like a bounded set.

use std::collections::{BTreeMap, BTreeSet};

use mage_mmu::{PageTable, Pte, Tlb};
use mage_sim::rng::SplitMix64;

/// Arbitrary interleavings of set/update/get agree with a flat-map model
/// across the whole 36-bit VPN space.
#[test]
fn pagetable_matches_flat_map() {
    let rng = SplitMix64::new(0x9A6E_7AB1);
    for _ in 0..32 {
        let pt = PageTable::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..1 + rng.next_below(299) {
            let op = rng.next_below(3);
            let vpn = rng.next_below(1 << 36);
            let val = rng.next_below(1 << 40);
            match op {
                0 => {
                    pt.set(vpn, Pte(val));
                    model.insert(vpn, val);
                }
                1 => {
                    let old = pt.update(vpn, |p| Pte(p.0 ^ val));
                    let entry = model.entry(vpn).or_insert(0);
                    assert_eq!(old.0, *entry);
                    *entry ^= val;
                }
                _ => {
                    let got = pt.get(vpn).0;
                    let want = model.get(&vpn).copied().unwrap_or(0);
                    assert_eq!(got, want);
                }
            }
        }
        for (vpn, want) in model {
            assert_eq!(pt.get(vpn).0, want);
        }
    }
}

/// The TLB never exceeds capacity, never reports an invalidated entry,
/// and always reports a just-filled entry (until evicted).
#[test]
fn tlb_is_a_bounded_set() {
    let rng = SplitMix64::new(0x71B0_5E77);
    for _ in 0..32 {
        let capacity = (1 + rng.next_below(63)) as usize;
        let tlb = Tlb::new(capacity, 99);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..1 + rng.next_below(299) {
            let op = rng.next_below(2);
            let vpn = rng.next_below(128);
            match op {
                0 => {
                    tlb.fill(vpn);
                    model.insert(vpn);
                    assert!(tlb.translates(vpn), "fill must take effect");
                }
                _ => {
                    tlb.invalidate(vpn);
                    model.remove(&vpn);
                    assert!(!tlb.translates(vpn), "invalidate must take effect");
                }
            }
            assert!(tlb.len() <= capacity);
            // Everything resident must be in the model (the reverse may
            // not hold because of capacity evictions).
            for v in 0..128u64 {
                if tlb.translates(v) {
                    assert!(model.contains(&v), "ghost entry {v}");
                }
            }
        }
    }
}

/// PTE flag operations are independent: toggling one bit never affects
/// the payload or the other bits.
#[test]
fn pte_bits_are_independent() {
    let rng = SplitMix64::new(0x97E0_0FF5);
    for _ in 0..256 {
        let payload = rng.next_below(1 << 50);
        let a = rng.next_below(2) == 1;
        let d = rng.next_below(2) == 1;
        let l = rng.next_below(2) == 1;
        let p = Pte::present(payload)
            .with_accessed(a)
            .with_dirty(d)
            .with_locked(l);
        assert_eq!(p.payload(), payload & ((1 << 52) - 1));
        assert_eq!(p.accessed(), a);
        assert_eq!(p.dirty(), d);
        assert_eq!(p.locked(), l);
        assert!(p.is_present());
        assert!(!p.is_remote());
    }
}
