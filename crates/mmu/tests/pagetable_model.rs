//! Model-based property tests: the radix page table must behave exactly
//! like a flat map, and the TLB like a bounded set.

use std::collections::HashMap;

use mage_mmu::{PageTable, Pte, Tlb};
use proptest::prelude::*;

proptest! {
    /// Arbitrary interleavings of set/update/get agree with a HashMap
    /// model across the whole 36-bit VPN space.
    #[test]
    fn pagetable_matches_flat_map(
        ops in proptest::collection::vec(
            (0u8..3, 0u64..(1 << 36), 0u64..(1 << 40)),
            1..300,
        )
    ) {
        let pt = PageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (op, vpn, val) in ops {
            match op {
                0 => {
                    pt.set(vpn, Pte(val));
                    model.insert(vpn, val);
                }
                1 => {
                    let old = pt.update(vpn, |p| Pte(p.0 ^ val));
                    let entry = model.entry(vpn).or_insert(0);
                    prop_assert_eq!(old.0, *entry);
                    *entry ^= val;
                }
                _ => {
                    let got = pt.get(vpn).0;
                    let want = model.get(&vpn).copied().unwrap_or(0);
                    prop_assert_eq!(got, want);
                }
            }
        }
        for (vpn, want) in model {
            prop_assert_eq!(pt.get(vpn).0, want);
        }
    }

    /// The TLB never exceeds capacity, never reports an invalidated
    /// entry, and always reports a just-filled entry (until evicted).
    #[test]
    fn tlb_is_a_bounded_set(
        capacity in 1usize..64,
        ops in proptest::collection::vec((0u8..2, 0u64..128), 1..300),
    ) {
        let tlb = Tlb::new(capacity, 99);
        let mut model: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (op, vpn) in ops {
            match op {
                0 => {
                    tlb.fill(vpn);
                    model.insert(vpn);
                    prop_assert!(tlb.translates(vpn), "fill must take effect");
                }
                _ => {
                    tlb.invalidate(vpn);
                    model.remove(&vpn);
                    prop_assert!(!tlb.translates(vpn), "invalidate must take effect");
                }
            }
            prop_assert!(tlb.len() <= capacity);
            // Everything resident must be in the model (the reverse may
            // not hold because of capacity evictions).
            for v in 0..128u64 {
                if tlb.translates(v) {
                    prop_assert!(model.contains(&v), "ghost entry {}", v);
                }
            }
        }
    }

    /// PTE flag operations are independent: toggling one bit never
    /// affects the payload or the other bits.
    #[test]
    fn pte_bits_are_independent(payload in 0u64..(1 << 50), a in any::<bool>(), d in any::<bool>(), l in any::<bool>()) {
        let p = Pte::present(payload)
            .with_accessed(a)
            .with_dirty(d)
            .with_locked(l);
        prop_assert_eq!(p.payload(), payload & ((1 << 52) - 1));
        prop_assert_eq!(p.accessed(), a);
        prop_assert_eq!(p.dirty(), d);
        prop_assert_eq!(p.locked(), l);
        prop_assert!(p.is_present());
        prop_assert!(!p.is_remote());
    }
}
