//! Per-core TLB model.
//!
//! The TLB tracks which virtual page numbers a core can currently
//! translate without touching the page table. It serves two purposes in
//! the reproduction:
//!
//! 1. **Hit accounting** — minor-access fast paths (TLB hit) versus
//!    page-table walks.
//! 2. **Safety checking** — the eviction pipeline must never reclaim a
//!    frame while any core still caches a translation to it. The engine's
//!    debug assertions consult [`Tlb::translates`] to enforce this.
//!
//! Invalidations performed by the shootdown protocol clear entries at
//! *request* time even though the simulated flush completes later; this is
//! conservative for hit accounting and exact for the safety check, because
//! the initiating evictor does not reclaim the frame until the flush ACK
//! (see `mage_mmu::ipi`).

use std::cell::RefCell;

use mage_sim::rng::SplitMix64;
use mage_sim::slab::PageMap;
use mage_sim::stats::Counter;

/// A fixed-capacity, randomly-replaced translation cache for one core.
pub struct Tlb {
    capacity: usize,
    /// vpn → slot in `order` (for O(1) invalidation). Open-addressed
    /// deterministic index: the hottest lookup in the simulator (once
    /// per access), converted from `BTreeMap` by the slab refactor.
    map: RefCell<PageMap<usize>>,
    /// Insertion vector for random replacement.
    order: RefCell<Vec<u64>>,
    rng: SplitMix64,
    /// Translation hits.
    pub hits: Counter,
    /// Translation misses.
    pub misses: Counter,
    /// Entries evicted by capacity replacement.
    pub capacity_evictions: Counter,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries (e.g. 1,536 for Ice Lake's
    /// combined DTLB+STLB reach at 4 KiB pages).
    pub fn new(capacity: usize, seed: u64) -> Self {
        Tlb {
            capacity,
            // 2× slack: a full TLB replaces an entry per miss (remove +
            // insert), and backward-shift deletion at the map's ¾-load
            // limit walks long probe chains. Half-load keeps them short.
            map: RefCell::new(PageMap::with_capacity(capacity * 2)),
            order: RefCell::new(Vec::with_capacity(capacity)),
            rng: SplitMix64::new(seed),
            hits: Counter::new(),
            misses: Counter::new(),
            capacity_evictions: Counter::new(),
        }
    }

    /// Looks up `vpn`, recording a hit or miss.
    pub fn lookup(&self, vpn: u64) -> bool {
        if self.map.borrow().contains_key(vpn) {
            self.hits.inc();
            true
        } else {
            self.misses.inc();
            false
        }
    }

    /// Whether the core can currently translate `vpn` (no stats recorded).
    pub fn translates(&self, vpn: u64) -> bool {
        self.map.borrow().contains_key(vpn)
    }

    /// Inserts a translation after a page-table walk, evicting a random
    /// victim if the TLB is full.
    pub fn fill(&self, vpn: u64) {
        let mut map = self.map.borrow_mut();
        if map.contains_key(vpn) {
            return;
        }
        let mut order = self.order.borrow_mut();
        if order.len() >= self.capacity {
            let victim_slot = self.rng.next_below(order.len() as u64) as usize;
            let victim = order[victim_slot];
            map.remove(victim);
            self.capacity_evictions.inc();
            order[victim_slot] = vpn;
            map.insert(vpn, victim_slot);
        } else {
            order.push(vpn);
            map.insert(vpn, order.len() - 1);
        }
    }

    /// Invalidates one translation (INVLPG).
    pub fn invalidate(&self, vpn: u64) {
        let mut map = self.map.borrow_mut();
        if let Some(slot) = map.remove(vpn) {
            let mut order = self.order.borrow_mut();
            let last = order.len() - 1;
            order.swap(slot, last);
            order.pop();
            if slot < order.len() {
                map.insert(order[slot], slot);
            }
        }
    }

    /// Flushes every translation (CR3 write).
    pub fn flush_all(&self) {
        *self.map.borrow_mut() = PageMap::with_capacity(self.capacity * 2);
        self.order.borrow_mut().clear();
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.order.borrow().len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.order.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let tlb = Tlb::new(4, 1);
        assert!(!tlb.lookup(10));
        tlb.fill(10);
        assert!(tlb.lookup(10));
        assert_eq!(tlb.hits.get(), 1);
        assert_eq!(tlb.misses.get(), 1);
    }

    #[test]
    fn invalidate_removes_entry() {
        let tlb = Tlb::new(4, 1);
        tlb.fill(1);
        tlb.fill(2);
        tlb.invalidate(1);
        assert!(!tlb.translates(1));
        assert!(tlb.translates(2));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn invalidate_absent_is_noop() {
        let tlb = Tlb::new(4, 1);
        tlb.fill(1);
        tlb.invalidate(99);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn capacity_replacement_bounds_size() {
        let tlb = Tlb::new(8, 42);
        for vpn in 0..100 {
            tlb.fill(vpn);
        }
        assert_eq!(tlb.len(), 8);
        assert_eq!(tlb.capacity_evictions.get(), 92);
        // Every resident entry must still be translatable.
        let resident: Vec<u64> = (0..100).filter(|&v| tlb.translates(v)).collect();
        assert_eq!(resident.len(), 8);
    }

    #[test]
    fn flush_all_clears() {
        let tlb = Tlb::new(16, 3);
        for vpn in 0..10 {
            tlb.fill(vpn);
        }
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert!(!tlb.translates(5));
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let tlb = Tlb::new(4, 1);
        tlb.fill(7);
        tlb.fill(7);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn swap_remove_bookkeeping_stays_consistent() {
        let tlb = Tlb::new(16, 5);
        for vpn in 0..10 {
            tlb.fill(vpn);
        }
        // Remove from the middle repeatedly; the map/order cross-links
        // must stay coherent.
        for vpn in [3, 0, 9, 5] {
            tlb.invalidate(vpn);
            assert!(!tlb.translates(vpn));
        }
        let alive: Vec<u64> = (0..10).filter(|&v| tlb.translates(v)).collect();
        assert_eq!(alive, vec![1, 2, 4, 6, 7, 8]);
        for &v in &alive {
            tlb.invalidate(v);
        }
        assert!(tlb.is_empty());
    }
}
