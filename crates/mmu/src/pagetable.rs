//! A 5-level radix page table with x86-style PTE bits.
//!
//! The table covers a 57-bit virtual address space (45-bit virtual page
//! numbers) with 9 bits per level, like x86-64 with LA57. Five levels
//! (rather than the classic four) let terabyte-scale simulated address
//! spaces — a 2^40-page VMA is 4 PiB of simulated memory — map without
//! touching the radix geometry; paths are still allocated lazily, so
//! host cost is O(touched pages), never O(address-space span). PTEs are
//! 64-bit words:
//!
//! ```text
//!  63           12 11        5  4      3      2     1        0
//! +---------------+-----------+------+------+-----+--------+---------+
//! |   payload     | (unused)  |REMOTE|LOCKED|DIRTY|ACCESSED| PRESENT |
//! +---------------+-----------+------+------+-----+--------+---------+
//! ```
//!
//! `payload` holds the physical frame number while PRESENT, or the remote
//! page offset while REMOTE (DiLOS/MAGE-style VMA-direct mapping stores
//! the far-memory location directly in the PTE instead of a swap entry,
//! paper §4.2.3). LOCKED is the per-PTE fault-dedup lock that DiLOS embeds
//! in the page table and that the unified page table of MAGE-Lib reuses
//! (§5.2).
//!
//! The API is copy-in/copy-out (`get`/`set`/`update`) so no references
//! escape the internal arena; all methods are `&self`.
//!
//! # Race detection
//!
//! PTE words are the central racy-by-design state of the whole engine:
//! the fault path and the eviction path mutate them from different
//! simulated cores, synchronized only by the embedded LOCKED bit. When a
//! [`ShadowRegion`] is attached (see [`PageTable::attach_shadow`] and
//! `mage_sim::race`), every access is classified for the simsan
//! happens-before detector:
//!
//! - [`get`](PageTable::get) / [`update`](PageTable::update) are
//!   *atomic-class* (lock-free `READ_ONCE`/`SET_BIT`-style single-word
//!   operations — the hardware a/d-bit updates and the dedup-loop reads);
//! - [`set`](PageTable::set) is a *plain write* that must be ordered by
//!   the lock protocol;
//! - [`try_lock`](PageTable::try_lock) / [`unlock`](PageTable::unlock)
//!   take acquire/release edges on the per-word lock, and callers whose
//!   lock transitions are implicit in a `set` (unmap writes
//!   `remote+locked`, install writes `present+unlocked`) mark them with
//!   [`shadow_lock`](PageTable::shadow_lock) /
//!   [`shadow_unlock`](PageTable::shadow_unlock) /
//!   [`shadow_publish`](PageTable::shadow_publish).
//!
//! Without an attached region every check is a single branch.

use std::cell::RefCell;

use mage_sim::race::ShadowRegion;

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

const LEVEL_BITS: u32 = 9;
const FANOUT: usize = 1 << LEVEL_BITS;
/// Radix depth (interior levels + the leaf level), LA57-style.
const LEVELS: u32 = 5;
const MAX_VPN: u64 = 1 << (LEVELS * LEVEL_BITS);

/// A page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Pte(pub u64);

impl Pte {
    const PRESENT: u64 = 1 << 0;
    const ACCESSED: u64 = 1 << 1;
    const DIRTY: u64 = 1 << 2;
    const LOCKED: u64 = 1 << 3;
    const REMOTE: u64 = 1 << 4;
    const PAYLOAD_SHIFT: u32 = 12;

    /// An empty (never-populated) entry.
    pub const NONE: Pte = Pte(0);

    /// Builds a present entry mapping physical frame `pfn`.
    pub fn present(pfn: u64) -> Pte {
        Pte((pfn << Self::PAYLOAD_SHIFT) | Self::PRESENT)
    }

    /// Builds a remote (non-present) entry pointing at remote page `rpn`.
    pub fn remote(rpn: u64) -> Pte {
        Pte((rpn << Self::PAYLOAD_SHIFT) | Self::REMOTE)
    }

    /// Whether the entry maps a local frame.
    pub fn is_present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// Whether the entry points to far memory.
    pub fn is_remote(self) -> bool {
        self.0 & Self::REMOTE != 0
    }

    /// Whether the accessed bit is set.
    pub fn accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    /// Whether the dirty bit is set.
    pub fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// Whether the fault-dedup lock bit is held.
    pub fn locked(self) -> bool {
        self.0 & Self::LOCKED != 0
    }

    /// The payload field (PFN while present, remote page while remote).
    pub fn payload(self) -> u64 {
        self.0 >> Self::PAYLOAD_SHIFT
    }

    /// Returns the entry with the accessed bit set/cleared.
    pub fn with_accessed(self, on: bool) -> Pte {
        self.with_bit(Self::ACCESSED, on)
    }

    /// Returns the entry with the dirty bit set/cleared.
    pub fn with_dirty(self, on: bool) -> Pte {
        self.with_bit(Self::DIRTY, on)
    }

    /// Returns the entry with the lock bit set/cleared.
    pub fn with_locked(self, on: bool) -> Pte {
        self.with_bit(Self::LOCKED, on)
    }

    fn with_bit(self, bit: u64, on: bool) -> Pte {
        if on {
            Pte(self.0 | bit)
        } else {
            Pte(self.0 & !bit)
        }
    }
}

/// A 5-level radix page table (arena-backed).
///
/// # Examples
///
/// ```
/// use mage_mmu::{PageTable, Pte};
///
/// let pt = PageTable::new();
/// pt.set(0x1234, Pte::present(77).with_accessed(true));
/// let e = pt.get(0x1234);
/// assert!(e.is_present() && e.accessed());
/// assert_eq!(e.payload(), 77);
/// assert_eq!(pt.get(0x9999), Pte::NONE);
/// ```
pub struct PageTable {
    /// Interior nodes; entry 0 is the root. Slots hold `child_index + 1`
    /// (0 = empty). The last interior level's slots index into `leaves`.
    interior: RefCell<Vec<[u32; FANOUT]>>,
    /// Leaf nodes of raw PTE words.
    leaves: RefCell<Vec<[u64; FANOUT]>>,
    /// Simsan shadow state over PTE words, indexed by vpn (inert until
    /// [`PageTable::attach_shadow`]).
    shadow: RefCell<ShadowRegion>,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            interior: RefCell::new(vec![[0; FANOUT]]),
            leaves: RefCell::new(Vec::new()),
            shadow: RefCell::new(ShadowRegion::disabled()),
        }
    }

    /// Attaches simsan shadow state: from here on every PTE access is
    /// classified and checked (see the module docs). Attach before the
    /// simulation runs; pass [`ShadowRegion::disabled`] to detach.
    pub fn attach_shadow(&self, region: ShadowRegion) {
        *self.shadow.borrow_mut() = region;
    }

    fn slot(vpn: u64, level: u32) -> usize {
        ((vpn >> (LEVEL_BITS * (LEVELS - 1 - level))) & (FANOUT as u64 - 1)) as usize
    }

    /// Encodes a freshly pushed arena index as a non-zero child-slot
    /// value. Slots are 32-bit and reserve 0 for "empty", so the arena
    /// holds at most `u32::MAX` nodes; past that the old `as u32 + 1`
    /// cast silently wrapped and corrupted the radix — fail loudly
    /// instead.
    fn child_link(idx: usize) -> u32 {
        match u32::try_from(idx) {
            Ok(i) if i < u32::MAX => i + 1,
            _ => panic!(
                "page-table arena overflow: node index {idx} exceeds the \
                 {}-node limit of the 32-bit child-slot encoding",
                u32::MAX
            ),
        }
    }

    /// Finds the leaf holding `vpn`, optionally creating the path.
    fn leaf_of(&self, vpn: u64, create: bool) -> Option<(usize, usize)> {
        assert!(vpn < MAX_VPN, "vpn {vpn:#x} exceeds 57-bit address space");
        let mut interior = self.interior.borrow_mut();
        let mut node = 0usize;
        for level in 0..LEVELS - 1 {
            let slot = Self::slot(vpn, level);
            let child = interior[node][slot];
            let next = if child != 0 {
                (child - 1) as usize
            } else if !create {
                return None;
            } else if level < LEVELS - 2 {
                interior.push([0; FANOUT]);
                let idx = interior.len() - 1;
                interior[node][slot] = Self::child_link(idx);
                idx
            } else {
                let mut leaves = self.leaves.borrow_mut();
                leaves.push([0; FANOUT]);
                let idx = leaves.len() - 1;
                interior[node][slot] = Self::child_link(idx);
                idx
            };
            node = next;
        }
        Some((node, Self::slot(vpn, LEVELS - 1)))
    }

    /// Reads the entry for `vpn` ([`Pte::NONE`] if the path is absent).
    ///
    /// Atomic-class for race detection: a lock-free `READ_ONCE`-style
    /// single-word read (the dedup-loop and policy probes).
    #[track_caller]
    pub fn get(&self, vpn: u64) -> Pte {
        self.shadow.borrow().on_atomic(vpn);
        match self.leaf_of(vpn, false) {
            Some((leaf, slot)) => Pte(self.leaves.borrow()[leaf][slot]),
            None => Pte::NONE,
        }
    }

    /// Writes the entry for `vpn`, creating intermediate levels.
    ///
    /// Plain-write-class for race detection: installs and unmaps must be
    /// ordered by the PTE lock protocol, so unordered concurrent `set`s
    /// are reported as data races when a shadow region is attached.
    #[track_caller]
    pub fn set(&self, vpn: u64, pte: Pte) {
        self.shadow.borrow().on_write(vpn);
        let (leaf, slot) = self.leaf_of(vpn, true).expect("create never fails");
        self.leaves.borrow_mut()[leaf][slot] = pte.0;
    }

    /// Atomically (w.r.t. the simulation) applies `f` to the entry for
    /// `vpn` and returns the *previous* value.
    ///
    /// Atomic-class for race detection: the hardware's accessed/dirty-bit
    /// RMWs and the lock-bit transitions are racy by design.
    #[track_caller]
    pub fn update(&self, vpn: u64, f: impl FnOnce(Pte) -> Pte) -> Pte {
        self.shadow.borrow().on_atomic(vpn);
        let (leaf, slot) = self.leaf_of(vpn, true).expect("create never fails");
        let mut leaves = self.leaves.borrow_mut();
        let old = Pte(leaves[leaf][slot]);
        leaves[leaf][slot] = f(old).0;
        old
    }

    /// Tries to set the lock bit; returns true on success (bit was clear).
    ///
    /// This is the PTE-embedded fault-deduplication lock of DiLOS / the
    /// MAGE-Lib unified page table (§5.2). Winning the bit takes an
    /// acquire edge on the word's lock for race detection.
    #[track_caller]
    pub fn try_lock(&self, vpn: u64) -> bool {
        let old = self.update(vpn, |p| p.with_locked(true));
        let won = !old.locked();
        if won {
            self.shadow.borrow().lock(vpn);
        }
        won
    }

    /// Clears the lock bit (a release edge on the word's lock).
    #[track_caller]
    pub fn unlock(&self, vpn: u64) {
        let old = self.update(vpn, |p| p.with_locked(false));
        debug_assert!(old.locked(), "unlock of unlocked pte {vpn:#x}");
        self.shadow.borrow().unlock(vpn);
    }

    /// Acquire edge on `vpn`'s word-lock for lock transitions implicit in
    /// a [`set`](PageTable::set) (the eviction unmap writes
    /// `remote+locked`; the refault-cancel takeover claims the eviction's
    /// lock through the `evicting` map).
    #[track_caller]
    pub fn shadow_lock(&self, vpn: u64) {
        self.shadow.borrow().lock(vpn);
    }

    /// Release edge on `vpn`'s word-lock for unlock transitions implicit
    /// in a [`set`](PageTable::set) (installing a `present+unlocked`
    /// value, or settling `remote+unlocked` via `update`).
    #[track_caller]
    pub fn shadow_unlock(&self, vpn: u64) {
        self.shadow.borrow().unlock(vpn);
    }

    /// Release edge on `vpn`'s word-lock *without* unlocking: the unmap
    /// publishes its `remote+locked` write so a refault-cancel that takes
    /// the lock over observes it ordered.
    #[track_caller]
    pub fn shadow_publish(&self, vpn: u64) {
        self.shadow.borrow().publish(vpn);
    }

    /// Number of allocated interior + leaf nodes (footprint estimate).
    pub fn node_count(&self) -> usize {
        self.interior.borrow().len() + self.leaves.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_returns_none() {
        let pt = PageTable::new();
        assert_eq!(pt.get(0), Pte::NONE);
        assert_eq!(pt.get(MAX_VPN - 1), Pte::NONE);
        assert_eq!(pt.node_count(), 1);
    }

    #[test]
    fn set_get_roundtrip_across_levels() {
        let pt = PageTable::new();
        // VPNs chosen to differ in every level slot.
        let vpns = [0u64, 1, 511, 512, 1 << 18, (1 << 27) + 5, MAX_VPN - 1];
        for (i, &vpn) in vpns.iter().enumerate() {
            pt.set(vpn, Pte::present(i as u64 + 100));
        }
        for (i, &vpn) in vpns.iter().enumerate() {
            let e = pt.get(vpn);
            assert!(e.is_present());
            assert_eq!(e.payload(), i as u64 + 100, "vpn {vpn:#x}");
        }
    }

    #[test]
    fn update_returns_previous() {
        let pt = PageTable::new();
        pt.set(42, Pte::remote(7));
        let old = pt.update(42, |p| p.with_accessed(true));
        assert_eq!(old, Pte::remote(7));
        assert!(pt.get(42).accessed());
        assert!(pt.get(42).is_remote());
    }

    #[test]
    fn pte_bit_operations() {
        let p = Pte::present(3).with_accessed(true).with_dirty(true);
        assert!(p.is_present() && p.accessed() && p.dirty());
        assert!(!p.is_remote() && !p.locked());
        let p = p.with_accessed(false);
        assert!(!p.accessed() && p.dirty());
        assert_eq!(p.payload(), 3);
    }

    #[test]
    fn remote_and_present_are_distinct() {
        let r = Pte::remote(9);
        assert!(r.is_remote() && !r.is_present());
        let p = Pte::present(9);
        assert!(p.is_present() && !p.is_remote());
        assert_eq!(r.payload(), p.payload());
    }

    #[test]
    fn pte_lock_protocol() {
        let pt = PageTable::new();
        pt.set(5, Pte::remote(1));
        assert!(pt.try_lock(5));
        assert!(!pt.try_lock(5), "second lock attempt must fail");
        pt.unlock(5);
        assert!(pt.try_lock(5));
    }

    #[test]
    #[should_panic(expected = "exceeds 57-bit address space")]
    fn oversized_vpn_panics() {
        PageTable::new().get(MAX_VPN);
    }

    #[test]
    fn dense_range_is_compact() {
        let pt = PageTable::new();
        for vpn in 0..10_000u64 {
            pt.set(vpn, Pte::present(vpn));
        }
        // 10k consecutive pages need ~20 leaves + 4 interior nodes.
        assert!(pt.node_count() < 30, "nodes: {}", pt.node_count());
        for vpn in (0..10_000u64).step_by(997) {
            assert_eq!(pt.get(vpn).payload(), vpn);
        }
    }

    #[test]
    fn scattered_pages_cost_o_touched_nodes() {
        // ~1k pages scattered over the full 2^45-vpn space: the radix
        // must allocate one path per touched page at most, never
        // anything proportional to the address-space span.
        let pt = PageTable::new();
        let touched = 1_000u64;
        for i in 0..touched {
            // Golden-ratio stride modulo the vpn space scatters across
            // every level's slots.
            let vpn = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % MAX_VPN;
            pt.set(vpn, Pte::present(i));
        }
        // Worst case: LEVELS-1 fresh nodes per page (shared root).
        let bound = 1 + touched as usize * (LEVELS as usize - 1);
        assert!(
            pt.node_count() <= bound,
            "nodes {} exceed O(touched) bound {bound}",
            pt.node_count()
        );
        for i in (0..touched).step_by(97) {
            let vpn = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % MAX_VPN;
            assert_eq!(pt.get(vpn).payload(), i);
        }
    }
}
