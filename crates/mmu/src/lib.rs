//! Simulated MMU substrate: page tables, TLBs, IPIs and address spaces.
//!
//! Far-memory systems live and die by virtual-memory plumbing: the paper's
//! Challenge 1 (§3.3.1) is TLB-coherence cost, and its eviction pipeline is
//! structured entirely around the unmap → shootdown → writeback → reclaim
//! ordering. This crate models that plumbing:
//!
//! - [`pagetable::PageTable`] — a 5-level radix page table with x86-style
//!   PTE bits (present/accessed/dirty/locked/remote),
//! - [`tlb::Tlb`] — per-core translation caches, used both for hit
//!   accounting and for checking the *stale-translation safety invariant*
//!   (a frame may not be reclaimed while a core could still translate to
//!   it),
//! - [`ipi::InterruptController`] — APIC-style IPI delivery with serial
//!   per-target sends, per-core FIFO handler queues, NUMA-dependent wire
//!   latency and optional VMexit penalty; IPI storms and queueing delay
//!   (paper Fig. 7) emerge from this mechanism,
//! - [`addrspace::AddressSpace`] — VMA bookkeeping with pluggable lock
//!   granularity (global, sharded interval locks, or none for unikernels).

pub mod addrspace;
pub mod ipi;
pub mod pagetable;
pub mod tlb;
pub mod topology;

pub use addrspace::{AddressSpace, Vma, VmaLockModel};
pub use ipi::{FlushTicket, InterruptController, IpiCostModel, IpiStats};
pub use pagetable::{PageTable, Pte, PAGE_SHIFT, PAGE_SIZE};
pub use tlb::Tlb;
pub use topology::{CoreId, Topology};
