//! Machine topology: cores and NUMA sockets.
//!
//! The paper's testbed is a dual-socket Xeon Gold 6348 (28 cores per
//! socket, §6.1); cross-socket IPI delivery is substantially slower and is
//! the cause of the latency inflection at 28 threads in Fig. 7.

/// Identifier of a logical core.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The core's index as a usize (for table lookups).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// NUMA topology of the simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of sockets.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
}

impl Topology {
    /// The paper's testbed: 2 sockets × 28 cores (§6.1).
    pub fn xeon_6348_dual() -> Self {
        Topology {
            sockets: 2,
            cores_per_socket: 28,
        }
    }

    /// A single-socket topology with `cores` cores (for unit tests).
    pub fn single_socket(cores: u32) -> Self {
        Topology {
            sockets: 1,
            cores_per_socket: cores,
        }
    }

    /// A dual-socket machine with `cores_per_socket` cores per socket:
    /// the paper's NUMA geometry scaled up, used by the 128–256
    /// virtual-core sweeps (cross-socket IPI costs stay in the model).
    pub fn dual_socket(cores_per_socket: u32) -> Self {
        Topology {
            sockets: 2,
            cores_per_socket,
        }
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// The socket that `core` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of(&self, core: CoreId) -> u32 {
        assert!(core.0 < self.total_cores(), "core {core:?} out of range");
        core.0 / self.cores_per_socket
    }

    /// Whether two cores sit on different sockets.
    pub fn cross_socket(&self, a: CoreId, b: CoreId) -> bool {
        self.socket_of(a) != self.socket_of(b)
    }

    /// Iterates over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_socket_layout() {
        let t = Topology::xeon_6348_dual();
        assert_eq!(t.total_cores(), 56);
        assert_eq!(t.socket_of(CoreId(0)), 0);
        assert_eq!(t.socket_of(CoreId(27)), 0);
        assert_eq!(t.socket_of(CoreId(28)), 1);
        assert!(t.cross_socket(CoreId(0), CoreId(28)));
        assert!(!t.cross_socket(CoreId(1), CoreId(27)));
    }

    #[test]
    fn cores_iterator_covers_all() {
        let t = Topology::single_socket(4);
        let ids: Vec<_> = t.cores().collect();
        assert_eq!(ids, vec![CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_out_of_range_panics() {
        Topology::single_socket(2).socket_of(CoreId(2));
    }
}
