//! APIC-style inter-processor interrupts and the TLB-shootdown protocol.
//!
//! The model follows §3.3.1 of the paper: the initiating core programs the
//! APIC and delivers IPIs to each remote core *one by one* (a serial,
//! per-target send cost); each target core handles interrupts *serially*
//! from a FIFO queue (handler occupancy is modeled as a busy-until
//! horizon). Two emergent effects reproduce the paper's observations:
//!
//! - **IPI storms**: when many cores shoot down simultaneously, target
//!   handler queues back up and per-IPI latency inflates (the paper
//!   measures 33× from 1 → 48 threads for Hermit);
//! - **NUMA inflection**: cross-socket wire latency is higher, so
//!   shootdown latency jumps once the application spans sockets (Fig. 7's
//!   inflection at 28 threads).
//!
//! Handling an IPI also *steals time* from the application thread running
//! on the target core; workload threads drain
//! [`InterruptController::take_stolen`] and add it to their execution time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mage_sim::stats::{Counter, Histogram};
use mage_sim::time::{Nanos, SimTime};
use mage_sim::trace::{Tracer, TRACK_TLB};
use mage_sim::SimHandle;

use crate::tlb::Tlb;
use crate::topology::{CoreId, Topology};

/// Cost model for IPI delivery and TLB invalidation.
#[derive(Clone, Debug)]
pub struct IpiCostModel {
    /// Sender-side APIC programming cost per target core (serial), ns.
    pub send_ns: Nanos,
    /// Wire latency to a core on the same socket, ns.
    pub wire_same_socket_ns: Nanos,
    /// Wire latency to a core on the remote socket, ns.
    pub wire_cross_socket_ns: Nanos,
    /// Extra cost per received IPI under virtualization (VMexit ≈ 1,200
    /// cycles, §3.3.1); zero on bare metal.
    pub vmexit_ns: Nanos,
    /// Fixed interrupt entry/exit cost at the target, ns.
    pub handler_base_ns: Nanos,
    /// Per-page INVLPG cost at the target, ns.
    pub invlpg_ns: Nanos,
    /// Pages at or above which the handler does a full flush instead of
    /// per-page INVLPGs (Linux's `tlb_single_page_flush_ceiling` is 33).
    pub full_flush_threshold: u32,
    /// Cost of a full TLB flush (CR3 write + refill amortization), ns.
    pub full_flush_ns: Nanos,
}

impl IpiCostModel {
    /// Bare-metal defaults calibrated to the paper's testbed.
    pub fn bare_metal() -> Self {
        IpiCostModel {
            send_ns: 250,
            wire_same_socket_ns: 1_000,
            wire_cross_socket_ns: 2_600,
            vmexit_ns: 0,
            handler_base_ns: 600,
            invlpg_ns: 40,
            full_flush_threshold: 33,
            full_flush_ns: 1_400,
        }
    }

    /// Virtualized defaults: every IPI triggers a VMexit (§3.3.1).
    pub fn virtualized() -> Self {
        IpiCostModel {
            vmexit_ns: 400,
            ..Self::bare_metal()
        }
    }

    /// Target-side handling cost for invalidating `pages` pages.
    pub fn handler_cost(&self, pages: u32) -> Nanos {
        if pages >= self.full_flush_threshold {
            self.handler_base_ns + self.full_flush_ns
        } else {
            self.handler_base_ns + pages as Nanos * self.invlpg_ns
        }
    }
}

struct Endpoint {
    busy_until: Cell<SimTime>,
    stolen_ns: Cell<Nanos>,
}

/// Aggregate IPI statistics.
#[derive(Default)]
pub struct IpiStats {
    /// Individual IPIs delivered.
    pub ipis: Counter,
    /// Per-IPI latency: send start → handler completion, ns.
    pub ipi_latency: Histogram,
    /// Shootdown events (one per batch broadcast).
    pub shootdowns: Counter,
    /// Full shootdown latency: first send → last ACK, ns.
    pub shootdown_latency: Histogram,
}

/// The machine's interrupt controller plus all per-core TLBs.
pub struct InterruptController {
    sim: SimHandle,
    topo: Topology,
    cost: IpiCostModel,
    endpoints: Vec<Endpoint>,
    tlbs: Vec<Rc<Tlb>>,
    stats: IpiStats,
    /// Optional trace collector; `None` (the default) costs one branch
    /// per shootdown round.
    tracer: RefCell<Option<Rc<Tracer>>>,
}

impl InterruptController {
    /// Creates a controller for `topo`, wiring up one TLB per core.
    pub fn new(sim: SimHandle, topo: Topology, cost: IpiCostModel, tlbs: Vec<Rc<Tlb>>) -> Self {
        assert_eq!(
            tlbs.len(),
            topo.total_cores() as usize,
            "one TLB per core required"
        );
        let endpoints = (0..topo.total_cores())
            .map(|_| Endpoint {
                busy_until: Cell::new(SimTime::ZERO),
                stolen_ns: Cell::new(0),
            })
            .collect();
        InterruptController {
            sim,
            topo,
            cost,
            endpoints,
            tlbs,
            stats: IpiStats::default(),
            tracer: RefCell::new(None),
        }
    }

    /// Attaches a tracer: each shootdown round is recorded on
    /// [`TRACK_TLB`] as a first-send → last-ACK interval (the last ACK
    /// instant is known when the round is posted, so the event is
    /// recorded synchronously even though ACKs land later).
    pub fn attach_tracer(&self, tracer: Rc<Tracer>) {
        *self.tracer.borrow_mut() = Some(tracer);
    }

    /// The TLB of `core`.
    pub fn tlb(&self, core: CoreId) -> &Rc<Tlb> {
        &self.tlbs[core.index()]
    }

    /// IPI statistics.
    pub fn stats(&self) -> &IpiStats {
        &self.stats
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &IpiCostModel {
        &self.cost
    }

    /// Drains the interrupt-handling time stolen from `core`'s thread
    /// since the last call. Workload threads add this to their compute.
    pub fn take_stolen(&self, core: CoreId) -> Nanos {
        self.endpoints[core.index()].stolen_ns.replace(0)
    }

    /// Sends a batched TLB-flush IPI round from `initiator` to `targets`
    /// covering `vpns`, paying the serial per-target send cost, and
    /// returns a ticket that resolves when every target has ACKed.
    ///
    /// The initiator's own TLB is invalidated inline (local INVLPGs are
    /// charged via [`IpiCostModel::handler_cost`] but need no IPI).
    pub async fn send_flush(
        &self,
        initiator: CoreId,
        targets: &[CoreId],
        vpns: &[u64],
    ) -> FlushTicket {
        let start = self.sim.now();
        // Local invalidation first (no IPI required).
        for &vpn in vpns {
            self.tlbs[initiator.index()].invalidate(vpn);
        }
        let handler = self.cost.handler_cost(vpns.len() as u32);
        let mut last_ack = self.sim.now();
        for &t in targets {
            if t == initiator {
                continue;
            }
            // Serial APIC programming at the sender.
            self.sim.sleep(self.cost.send_ns).await;
            let send_time = self.sim.now();
            let wire = if self.topo.cross_socket(initiator, t) {
                self.cost.wire_cross_socket_ns
            } else {
                self.cost.wire_same_socket_ns
            };
            let arrival = send_time + wire + self.cost.vmexit_ns;
            let ep = &self.endpoints[t.index()];
            let begin = ep.busy_until.get().max(arrival);
            let done = begin + handler;
            ep.busy_until.set(done);
            ep.stolen_ns.set(ep.stolen_ns.get() + handler);
            // Invalidate the target's entries now; the frame will not be
            // reclaimed until the ticket resolves, so the safety invariant
            // holds (see module docs in `tlb`).
            for &vpn in vpns {
                self.tlbs[t.index()].invalidate(vpn);
            }
            self.stats.ipis.inc();
            self.stats.ipi_latency.record(done - send_time);
            last_ack = last_ack.max(done);
        }
        self.stats.shootdowns.inc();
        self.stats
            .shootdown_latency
            .record(last_ack.saturating_since(start));
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.record(
                TRACK_TLB,
                "tlb",
                "shootdown",
                start.as_nanos(),
                last_ack.saturating_since(start),
                Some(("pages", vpns.len() as u64)),
            );
        }
        FlushTicket {
            sim: self.sim.clone(),
            done_at: last_ack,
        }
    }

    /// Convenience: send a flush and wait for all ACKs before returning.
    pub async fn flush_sync(&self, initiator: CoreId, targets: &[CoreId], vpns: &[u64]) -> Nanos {
        let start = self.sim.now();
        let ticket = self.send_flush(initiator, targets, vpns).await;
        ticket.wait().await;
        self.sim.now().saturating_since(start)
    }
}

/// An in-flight shootdown; resolves when the last target ACKs.
pub struct FlushTicket {
    sim: SimHandle,
    done_at: SimTime,
}

impl FlushTicket {
    /// The instant at which all ACKs have arrived.
    pub fn done_at(&self) -> SimTime {
        self.done_at
    }

    /// Waits for the ACKs.
    pub async fn wait(&self) {
        self.sim.sleep_until(self.done_at).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;

    fn controller(sim: &Simulation, topo: Topology, cost: IpiCostModel) -> Rc<InterruptController> {
        let tlbs = (0..topo.total_cores())
            .map(|i| Rc::new(Tlb::new(64, i as u64)))
            .collect();
        Rc::new(InterruptController::new(sim.handle(), topo, cost, tlbs))
    }

    #[test]
    fn single_target_latency_breakdown() {
        let sim = Simulation::new();
        let topo = Topology::single_socket(2);
        let cost = IpiCostModel::bare_metal();
        let ic = controller(&sim, topo, cost.clone());
        let ic2 = Rc::clone(&ic);
        let lat = sim.block_on(async move { ic2.flush_sync(CoreId(0), &[CoreId(1)], &[42]).await });
        let expected = cost.send_ns + cost.wire_same_socket_ns + cost.handler_cost(1);
        assert_eq!(lat, expected);
    }

    #[test]
    fn cross_socket_is_slower() {
        let sim = Simulation::new();
        let topo = Topology::xeon_6348_dual();
        let ic = controller(&sim, topo, IpiCostModel::bare_metal());
        let ic2 = Rc::clone(&ic);
        let (same, cross) = sim.block_on(async move {
            let same = ic2.flush_sync(CoreId(0), &[CoreId(1)], &[1]).await;
            let cross = ic2.flush_sync(CoreId(0), &[CoreId(28)], &[2]).await;
            (same, cross)
        });
        assert!(cross > same, "cross {cross} <= same {same}");
    }

    #[test]
    fn vmexit_penalty_applies() {
        let sim = Simulation::new();
        let topo = Topology::single_socket(2);
        let bare = controller(&sim, topo, IpiCostModel::bare_metal());
        let virt = controller(&sim, topo, IpiCostModel::virtualized());
        let (b, v) = {
            let (bare, virt) = (Rc::clone(&bare), Rc::clone(&virt));
            sim.block_on(async move {
                let b = bare.flush_sync(CoreId(0), &[CoreId(1)], &[1]).await;
                let v = virt.flush_sync(CoreId(0), &[CoreId(1)], &[1]).await;
                (b, v)
            })
        };
        assert_eq!(v - b, 400);
    }

    #[test]
    fn batched_flush_amortizes_ipis() {
        // One shootdown covering 64 pages must be far cheaper than 64
        // single-page shootdowns.
        let sim = Simulation::new();
        let topo = Topology::single_socket(4);
        let ic = controller(&sim, topo, IpiCostModel::bare_metal());
        let targets: Vec<CoreId> = (1..4).map(CoreId).collect();
        let ic2 = Rc::clone(&ic);
        let t2 = targets.clone();
        let (batched, singles) = sim.block_on(async move {
            let vpns: Vec<u64> = (0..64).collect();
            let batched = ic2.flush_sync(CoreId(0), &t2, &vpns).await;
            let mut singles = 0;
            for &vpn in &vpns {
                singles += ic2.flush_sync(CoreId(0), &t2, &[vpn]).await;
            }
            (batched, singles)
        });
        assert!(
            batched * 10 < singles,
            "batched {batched} vs singles {singles}"
        );
        assert_eq!(ic.stats().shootdowns.get(), 65);
    }

    #[test]
    fn concurrent_senders_queue_at_target() {
        // Two cores shooting down the same third core: the second IPI
        // queues behind the first at the target's handler.
        let sim = Simulation::new();
        let topo = Topology::single_socket(3);
        let cost = IpiCostModel::bare_metal();
        let ic = controller(&sim, topo, cost.clone());
        let a = Rc::clone(&ic);
        let b = Rc::clone(&ic);
        let ja = sim.spawn(async move { a.flush_sync(CoreId(0), &[CoreId(2)], &[1]).await });
        let jb = sim.spawn(async move { b.flush_sync(CoreId(1), &[CoreId(2)], &[2]).await });
        let (la, lb) = sim.block_on(async move { (ja.await, jb.await) });
        let uncontended = cost.send_ns + cost.wire_same_socket_ns + cost.handler_cost(1);
        assert_eq!(la.min(lb), uncontended);
        assert_eq!(la.max(lb), uncontended + cost.handler_cost(1));
    }

    #[test]
    fn stolen_time_accrues_at_targets() {
        let sim = Simulation::new();
        let topo = Topology::single_socket(2);
        let cost = IpiCostModel::bare_metal();
        let ic = controller(&sim, topo, cost.clone());
        let ic2 = Rc::clone(&ic);
        sim.block_on(async move {
            ic2.flush_sync(CoreId(0), &[CoreId(1)], &[1, 2, 3]).await;
        });
        assert_eq!(ic.take_stolen(CoreId(1)), cost.handler_cost(3));
        assert_eq!(ic.take_stolen(CoreId(1)), 0, "drain resets");
        assert_eq!(ic.take_stolen(CoreId(0)), 0, "initiator pays inline");
    }

    #[test]
    fn flush_invalidates_all_tlbs() {
        let sim = Simulation::new();
        let topo = Topology::single_socket(3);
        let ic = controller(&sim, topo, IpiCostModel::bare_metal());
        for core in topo.cores() {
            ic.tlb(core).fill(77);
        }
        let ic2 = Rc::clone(&ic);
        sim.block_on(async move {
            ic2.flush_sync(CoreId(0), &[CoreId(1), CoreId(2)], &[77])
                .await;
        });
        for core in topo.cores() {
            assert!(!ic.tlb(core).translates(77), "core {core:?} stale");
        }
    }

    #[test]
    fn initiator_in_target_list_is_skipped() {
        let sim = Simulation::new();
        let topo = Topology::single_socket(2);
        let ic = controller(&sim, topo, IpiCostModel::bare_metal());
        let ic2 = Rc::clone(&ic);
        sim.block_on(async move {
            ic2.flush_sync(CoreId(0), &[CoreId(0), CoreId(1)], &[5])
                .await;
        });
        assert_eq!(ic.stats().ipis.get(), 1, "no self-IPI");
    }
}
