//! Virtual address spaces, VMAs and address-space lock models.
//!
//! The fault-in path's first scalability bottleneck in Linux-derived
//! systems is contention on address-space metadata locks (VMA locks,
//! `mmap_lock`; §3.2 "Fault-in path"). The systems compared in the paper
//! differ exactly in this layer:
//!
//! - **Hermit (Linux)** — a global address-space lock taken (briefly) on
//!   every fault ([`VmaLockModel::Global`]);
//! - **MAGE-Lnx** — coarse locks split into interval-tree "shards"
//!   (§5.1), modeled as hash-sharded range locks
//!   ([`VmaLockModel::Sharded`]);
//! - **DiLOS / MAGE-Lib (unikernel)** — a unified page table with
//!   PTE-embedded synchronization and no VMA lock at all
//!   ([`VmaLockModel::None`]).

use std::collections::BTreeMap;
use std::rc::Rc;

use mage_sim::sync::SimMutex;
use mage_sim::SimHandle;

use crate::pagetable::PAGE_SHIFT;

/// A virtual memory area.
#[derive(Clone, Debug)]
pub struct Vma {
    /// First virtual page number.
    pub start_vpn: u64,
    /// Number of pages.
    pub pages: u64,
    /// Base remote page number for VMA-level direct mapping (§4.2.3): the
    /// page at `start_vpn + i` lives at remote page `remote_base + i`.
    pub remote_base: u64,
}

impl Vma {
    /// Whether `vpn` falls inside this VMA.
    pub fn contains(&self, vpn: u64) -> bool {
        vpn >= self.start_vpn && vpn < self.start_vpn + self.pages
    }

    /// Remote page number backing `vpn` under direct mapping.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is outside the VMA.
    pub fn remote_page(&self, vpn: u64) -> u64 {
        assert!(self.contains(vpn), "vpn outside vma");
        self.remote_base + (vpn - self.start_vpn)
    }

    /// Last vpn + 1.
    pub fn end_vpn(&self) -> u64 {
        self.start_vpn + self.pages
    }
}

/// Lock granularity protecting address-space metadata on the fault path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmaLockModel {
    /// One lock for the whole address space (Linux `mmap_lock`-style).
    Global,
    /// `n` hash-sharded interval locks (MAGE-Lnx interval-tree shards).
    Sharded(usize),
    /// No VMA locking (unikernel unified page table).
    None,
}

/// An address space: VMA map plus the configured lock model.
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    lock_model: VmaLockModel,
    locks: Vec<Rc<SimMutex<()>>>,
    next_vpn: u64,
    next_remote: u64,
}

impl AddressSpace {
    /// Creates an empty address space with the given lock model.
    pub fn new(sim: SimHandle, lock_model: VmaLockModel) -> Self {
        let n_locks = match lock_model {
            VmaLockModel::Global => 1,
            VmaLockModel::Sharded(n) => n.max(1),
            VmaLockModel::None => 0,
        };
        AddressSpace {
            vmas: BTreeMap::new(),
            lock_model,
            locks: (0..n_locks)
                .map(|_| Rc::new(SimMutex::new_named(sim.clone(), "mmu.vma-shard", ())))
                .collect(),
            next_vpn: 0x10_0000, // leave low addresses unmapped
            next_remote: 0,
        }
    }

    /// The lock model in force.
    pub fn lock_model(&self) -> VmaLockModel {
        self.lock_model
    }

    /// Maps a new region of `pages` pages, assigning it a directly-mapped
    /// remote backing range, and returns the VMA.
    pub fn mmap(&mut self, pages: u64) -> Vma {
        let vma = Vma {
            start_vpn: self.next_vpn,
            pages,
            remote_base: self.next_remote,
        };
        self.next_vpn += pages + 512; // guard gap
        self.next_remote += pages;
        self.vmas.insert(vma.start_vpn, vma.clone());
        vma
    }

    /// Finds the VMA containing `vpn`.
    pub fn find(&self, vpn: u64) -> Option<&Vma> {
        self.vmas
            .range(..=vpn)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vpn))
    }

    /// The metadata lock guarding faults on `vpn`, if the model has one.
    pub fn lock_for(&self, vpn: u64) -> Option<&Rc<SimMutex<()>>> {
        match self.lock_model {
            VmaLockModel::None => None,
            VmaLockModel::Global => Some(&self.locks[0]),
            VmaLockModel::Sharded(_) => {
                let shard =
                    (mage_sim::rng::mix64(vpn >> (21 - PAGE_SHIFT)) as usize) % self.locks.len();
                Some(&self.locks[shard])
            }
        }
    }

    /// Total mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.pages).sum()
    }

    /// Iterates over the VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;

    fn space(model: VmaLockModel) -> AddressSpace {
        AddressSpace::new(Simulation::new().handle(), model)
    }

    #[test]
    fn mmap_and_find() {
        let mut asp = space(VmaLockModel::None);
        let a = asp.mmap(100);
        let b = asp.mmap(50);
        assert!(asp.find(a.start_vpn + 99).is_some());
        assert!(asp.find(a.start_vpn + 100).is_none(), "guard gap unmapped");
        assert_eq!(asp.find(b.start_vpn).unwrap().pages, 50);
        assert_eq!(asp.mapped_pages(), 150);
    }

    #[test]
    fn direct_mapping_is_offset_preserving() {
        let mut asp = space(VmaLockModel::None);
        let a = asp.mmap(10);
        let b = asp.mmap(10);
        // Paper §4.2.3: local_addr + 512KB maps to remote_addr + 512KB.
        assert_eq!(a.remote_page(a.start_vpn + 7), a.remote_base + 7);
        // Remote ranges must not overlap between VMAs.
        assert_eq!(b.remote_base, a.remote_base + 10);
    }

    #[test]
    fn lock_model_selection() {
        let mut global = space(VmaLockModel::Global);
        let v = global.mmap(1000);
        let l1 = Rc::as_ptr(global.lock_for(v.start_vpn).unwrap());
        let l2 = Rc::as_ptr(global.lock_for(v.start_vpn + 999).unwrap());
        assert_eq!(l1, l2, "global model has one lock");

        let mut none = space(VmaLockModel::None);
        let v = none.mmap(10);
        assert!(none.lock_for(v.start_vpn).is_none());

        let mut sharded = space(VmaLockModel::Sharded(8));
        let v = sharded.mmap(1 << 14);
        // Different 2 MiB extents should spread across shards.
        let shards: std::collections::BTreeSet<_> = (0..32)
            .map(|i| Rc::as_ptr(sharded.lock_for(v.start_vpn + i * 512).unwrap()))
            .collect();
        assert!(shards.len() > 1, "sharding must use multiple locks");
        // Same extent always maps to the same shard.
        assert_eq!(
            Rc::as_ptr(sharded.lock_for(v.start_vpn).unwrap()),
            Rc::as_ptr(sharded.lock_for(v.start_vpn + 1).unwrap())
        );
    }

    #[test]
    #[should_panic(expected = "outside vma")]
    fn remote_page_out_of_bounds_panics() {
        let mut asp = space(VmaLockModel::None);
        let a = asp.mmap(10);
        let _ = a.remote_page(a.start_vpn + 10);
    }
}
