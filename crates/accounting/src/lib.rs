//! Page accounting: tracking residency and choosing eviction victims.
//!
//! Page accounting is the most update-intensive structure in a far-memory
//! system — both the fault-in path (inserting freshly faulted pages,
//! `FP₃`) and the eviction path (scanning for victims, `EP₁`) hammer it,
//! and the paper identifies contention on the system-wide LRU list as
//! Challenge 2 (§3.3.2). This crate implements the designs the paper
//! compares:
//!
//! - [`AccountingKind::GlobalLru`] — one active/inactive LRU pair behind a
//!   single lock (Linux / Hermit / DiLOS);
//! - [`AccountingKind::PartitionedLru`] — MAGE's per-evictor partitioned
//!   LRU lists: insertion hashes the faulting CPU id to a partition,
//!   evictors scan partitions round-robin from staggered starting indices
//!   (§4.2.2); accuracy is deliberately traded for lock locality;
//! - [`AccountingKind::FifoQueues`] — MAGE-Lnx's low-contention FIFO
//!   queues with no accessed-bit recheck (§5.1), trading more accuracy
//!   for even less list manipulation.
//!
//! Victim hotness is judged through a caller-supplied predicate reading
//! (and clearing) the PTE accessed bit, so this crate stays independent of
//! the page-table representation.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, VecDeque};

use mage_sim::stats::Counter;
use mage_sim::sync::{LockStats, SimMutex};
use mage_sim::time::Nanos;
use mage_sim::SimHandle;

/// Hotness probe consulted while scanning victim candidates.
///
/// Implementors read **and age** the candidate's reference state (for the
/// default second-chance policy: read-and-clear the PTE accessed bit).
/// Returning `true` keeps the page resident for another round. The engine
/// passes its configured `EvictionPolicy` through this trait; plain
/// closures work too via the blanket impl (used by tests).
pub trait VictimProbe {
    /// Tests the candidate and ages its metadata; `true` means hot.
    fn test_and_age(&self, vpn: u64) -> bool;
}

impl<F: Fn(u64) -> bool> VictimProbe for F {
    fn test_and_age(&self, vpn: u64) -> bool {
        self(vpn)
    }
}

/// Service-time constants for accounting operations (virtual ns).
#[derive(Clone, Debug)]
pub struct AccountingCosts {
    /// List push/pop/move under the partition lock.
    pub list_op_ns: Nanos,
    /// Per-page cost of splicing pages off a list *under* the lock
    /// (pointer manipulation only, like Linux `isolate_lru_pages`).
    pub pop_per_page_ns: Nanos,
    /// Per-page accessed-bit check during a scan (performed *off* the
    /// lock, on pages already isolated).
    pub scan_per_page_ns: Nanos,
}

impl Default for AccountingCosts {
    fn default() -> Self {
        AccountingCosts {
            list_op_ns: 200,
            pop_per_page_ns: 30,
            scan_per_page_ns: 150,
        }
    }
}

/// Which accounting structure a system uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccountingKind {
    /// System-wide active/inactive LRU behind one lock.
    GlobalLru,
    /// `partitions` independent LRU lists (MAGE, §4.2.2).
    PartitionedLru {
        /// Number of independent lists.
        partitions: usize,
    },
    /// `partitions` independent FIFO queues without accessed-bit rechecks
    /// (MAGE-Lnx, §5.1).
    FifoQueues {
        /// Number of independent queues.
        partitions: usize,
    },
    /// Classic CLOCK (second chance): one circular queue per partition;
    /// hot pages rotate to the tail of the *same* queue instead of being
    /// promoted to an active list.
    Clock {
        /// Number of independent clocks.
        partitions: usize,
    },
    /// S3-FIFO-like (SOSP '23): a small probationary queue, a main queue
    /// and a ghost list. The paper (§4.2.2) notes S3-FIFO wants
    /// fine-grained access frequencies that page tables cannot provide;
    /// this implementation honestly degrades it to the one-bit accessed
    /// signal, so its accuracy advantage largely evaporates — which is
    /// the paper's point.
    S3Fifo {
        /// Number of independent instances.
        partitions: usize,
    },
}

impl AccountingKind {
    /// Number of independent partitions this kind maintains.
    pub fn partitions(&self) -> usize {
        match *self {
            AccountingKind::GlobalLru => 1,
            AccountingKind::PartitionedLru { partitions }
            | AccountingKind::FifoQueues { partitions }
            | AccountingKind::Clock { partitions }
            | AccountingKind::S3Fifo { partitions } => partitions.max(1),
        }
    }
}

struct Lists {
    /// The probationary queue. Under [`AccountingKind::S3Fifo`] this is
    /// the *small* queue; the LRU designs use it as the inactive list.
    inactive: VecDeque<u64>,
    /// The protected queue. Under [`AccountingKind::S3Fifo`] this is the
    /// *main* queue; the LRU designs use it as the active list.
    active: VecDeque<u64>,
}

/// A bounded FIFO of recently evicted pages — the S3-FIFO ghost queue
/// (SOSP '23), shared by every accounting structure as the engine's
/// *re-fault detector*: a page that faults back in while still on the
/// ghost list was evicted too early.
///
/// Under [`AccountingKind::S3Fifo`] the ghost additionally drives
/// placement (a ghost hit admits the page straight to the main queue);
/// under every other kind it is measurement-only, so the default paths
/// keep their schedules bit-for-bit (membership updates are synchronous
/// — no locks, no virtual time).
///
/// Contents are mirrored in a `BTreeSet` so membership tests are
/// `O(log n)`; the queue and the set always hold exactly the same pages.
#[derive(Debug)]
pub struct GhostList {
    cap: usize,
    queue: VecDeque<u64>,
    members: BTreeSet<u64>,
}

impl GhostList {
    /// The default capacity, matching the historical per-structure bound.
    pub const DEFAULT_CAP: usize = 4_096;

    /// An empty ghost list bounded at `cap` pages (`0` disables it).
    pub fn new(cap: usize) -> Self {
        GhostList {
            cap,
            queue: VecDeque::new(),
            members: BTreeSet::new(),
        }
    }

    /// Remembers `vpn` as recently evicted. Re-recording a page refreshes
    /// its position (it ages from the back of the queue again); the
    /// oldest entry falls off once the bound is exceeded.
    pub fn record(&mut self, vpn: u64) {
        if self.cap == 0 {
            return;
        }
        if self.members.contains(&vpn) {
            if let Some(pos) = self.queue.iter().position(|&v| v == vpn) {
                self.queue.remove(pos);
            }
        } else {
            self.members.insert(vpn);
        }
        self.queue.push_back(vpn);
        while self.queue.len() > self.cap {
            if let Some(old) = self.queue.pop_front() {
                self.members.remove(&old);
            }
        }
    }

    /// Consumes a ghost hit: removes `vpn` and reports whether it was
    /// present (i.e. whether this insert is a re-fault).
    pub fn take(&mut self, vpn: u64) -> bool {
        if !self.members.remove(&vpn) {
            return false;
        }
        if let Some(pos) = self.queue.iter().position(|&v| v == vpn) {
            self.queue.remove(pos);
        }
        true
    }

    /// Whether `vpn` is currently remembered.
    pub fn contains(&self, vpn: u64) -> bool {
        self.members.contains(&vpn)
    }

    /// Pages currently remembered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Aggregate accounting statistics.
#[derive(Default)]
pub struct AccountingStats {
    /// Pages inserted (fault-in or reactivation re-insert).
    pub inserts: Counter,
    /// Pages examined during scans.
    pub scanned: Counter,
    /// Pages found hot and rotated back (second chance).
    pub reactivated: Counter,
    /// Victims handed to the evictor.
    pub victims: Counter,
}

/// The page-accounting structure of a running system.
pub struct PageAccounting {
    sim: SimHandle,
    kind: AccountingKind,
    costs: AccountingCosts,
    partitions: Vec<SimMutex<Lists>>,
    /// Engine-wide re-fault detector (see [`GhostList`]). Updated
    /// synchronously so it never perturbs the event schedule.
    ghost: RefCell<GhostList>,
    resident: Cell<u64>,
    stats: AccountingStats,
}

impl PageAccounting {
    /// Creates the accounting structure for `kind`.
    pub fn new(sim: SimHandle, kind: AccountingKind, costs: AccountingCosts) -> Self {
        let n = kind.partitions();
        PageAccounting {
            kind,
            costs,
            partitions: (0..n)
                .map(|_| {
                    SimMutex::new_named(
                        sim.clone(),
                        "accounting.lists",
                        Lists {
                            inactive: VecDeque::new(),
                            active: VecDeque::new(),
                        },
                    )
                })
                .collect(),
            ghost: RefCell::new(GhostList::new(GhostList::DEFAULT_CAP)),
            resident: Cell::new(0),
            stats: AccountingStats::default(),
            sim,
        }
    }

    /// The structure kind.
    pub fn kind(&self) -> AccountingKind {
        self.kind
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Pages currently tracked.
    pub fn resident_pages(&self) -> u64 {
        self.resident.get()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &AccountingStats {
        &self.stats
    }

    /// Merged contention statistics across partition locks.
    pub fn lock_wait_sum_ns(&self) -> u64 {
        self.partitions.iter().map(|p| p.stats().wait().sum()).sum()
    }

    /// Total lock acquisitions across partitions.
    pub fn lock_acquisitions(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.stats().acquisitions())
            .sum()
    }

    /// Contention statistics of partition `i`.
    pub fn partition_lock_stats(&self, i: usize) -> &LockStats {
        self.partitions[i].stats()
    }

    fn partition_for_insert(&self, core: usize) -> usize {
        // Paper §4.2.2: hash of the current CPU id modulo list count.
        (mage_sim::rng::mix64(core as u64) as usize) % self.partitions.len()
    }

    /// Synchronously seeds a resident page during setup (no virtual time
    /// passes, no statistics recorded).
    pub fn seed(&self, core: usize, vpn: u64) {
        let idx = self.partition_for_insert(core);
        self.partitions[idx].with_sync(|lists| lists.inactive.push_back(vpn));
        self.resident.set(self.resident.get() + 1);
    }

    /// Records a page as resident (`FP₃`) and reports whether the insert
    /// is a *re-fault* — the page was still on the ghost list of recently
    /// evicted pages, i.e. it was evicted too early.
    ///
    /// `core` is the CPU of the inserting thread; it selects the target
    /// partition under the partitioned designs. The ghost check is
    /// synchronous and happens for every kind; only
    /// [`AccountingKind::S3Fifo`] also acts on it (a ghost hit admits the
    /// page straight to the main queue instead of probation), so the
    /// other kinds keep their event schedules bit-for-bit.
    pub async fn insert(&self, core: usize, vpn: u64) -> bool {
        let ghost_hit = self.ghost.borrow_mut().take(vpn);
        let idx = self.partition_for_insert(core);
        let mut lists = self.partitions[idx].lock().await;
        self.sim.sleep(self.costs.list_op_ns).await;
        if ghost_hit && matches!(self.kind, AccountingKind::S3Fifo { .. }) {
            // Ghost hit: the page was recently evicted and is back —
            // admit it straight to the main queue.
            lists.active.push_back(vpn);
        } else {
            lists.inactive.push_back(vpn); // small/probationary queue
        }
        drop(lists);
        self.resident.set(self.resident.get() + 1);
        self.stats.inserts.inc();
        ghost_hit
    }

    /// Selects up to `want` victim pages for evictor `evictor_id` on its
    /// `round`-th scan cycle (`EP₁`).
    ///
    /// Pages are spliced off the list in batches *under* the lock (cheap
    /// pointer work, like Linux's `isolate_lru_pages`), then the
    /// accessed-bit recheck runs *off* the lock; hot pages get a second
    /// chance and are re-added to the active list. Under
    /// [`AccountingKind::FifoQueues`] the probe is not consulted (no
    /// recheck — the accuracy trade of MAGE-Lnx).
    ///
    /// `probe` reads **and ages** the page's reference state (see
    /// [`VictimProbe`]).
    pub async fn take_victims(
        &self,
        evictor_id: usize,
        round: usize,
        want: usize,
        probe: &dyn VictimProbe,
        out: &mut Vec<u64>,
    ) {
        let n = self.partitions.len();
        let recheck = !matches!(self.kind, AccountingKind::FifoQueues { .. });
        let before = out.len();
        let target = before + want;
        // Staggered start + round-robin over partitions (§4.2.2). Allow a
        // few passes so second-chance rejections don't under-fill.
        let mut idx = (evictor_id + round) % n;
        let mut tried = 0;
        let max_tries = n * 3;
        // Bound the total scan work per call so that a reactivation-heavy
        // (hot) list cannot stall the evictor for an unbounded time.
        let mut scan_budget = want * 4;
        while out.len() < target && tried < max_tries && scan_budget > 0 {
            let isolated = self
                .isolate(idx, (target - out.len()).min(scan_budget))
                .await;
            scan_budget = scan_budget.saturating_sub(isolated.len());
            if isolated.is_empty() {
                idx = (idx + 1) % n;
                tried += 1;
                continue;
            }
            // Recheck accessed bits off the lock.
            let mut hot = Vec::new();
            for vpn in isolated {
                if recheck {
                    self.sim.sleep(self.costs.scan_per_page_ns).await;
                    self.stats.scanned.inc();
                    if probe.test_and_age(vpn) {
                        hot.push(vpn);
                        continue;
                    }
                } else {
                    self.stats.scanned.inc();
                }
                out.push(vpn);
            }
            if !hot.is_empty() {
                self.stats.reactivated.add(hot.len() as u64);
                let mut lists = self.partitions[idx].lock().await;
                self.sim
                    .sleep(self.costs.list_op_ns + self.costs.pop_per_page_ns * hot.len() as u64)
                    .await;
                match self.kind {
                    // CLOCK rotates survivors to the tail of the same
                    // circular queue.
                    AccountingKind::Clock { .. } => lists.inactive.extend(hot),
                    // S3-FIFO promotes probation survivors to main; the
                    // others use an active list.
                    _ => lists.active.extend(hot),
                }
            }
            idx = (idx + 1) % n;
            tried += 1;
        }
        let taken = (out.len() - before) as u64;
        if taken > 0 {
            // Remember the victims so a quick re-fault is detectable (and,
            // under S3-FIFO, promoted to the main queue). Synchronous: no
            // lock, no virtual time, so non-S3-FIFO schedules are
            // unchanged. Pages evicted without passing through this scan
            // path (e.g. direct removal) bypass the detector.
            let mut ghost = self.ghost.borrow_mut();
            for &vpn in &out[before..] {
                ghost.record(vpn);
            }
        }
        self.resident.set(self.resident.get().saturating_sub(taken));
        self.stats.victims.add(taken);
    }

    /// Pages currently on the ghost (recently-evicted) list.
    pub fn ghost_len(&self) -> usize {
        self.ghost.borrow().len()
    }

    /// Whether `vpn` is currently on the ghost list.
    pub fn ghost_contains(&self, vpn: u64) -> bool {
        self.ghost.borrow().contains(vpn)
    }

    /// Snapshot of every partition's `(probationary, protected)` queues,
    /// for tests and debugging only (synchronous; panics if a partition
    /// lock is held).
    pub fn queues_snapshot(&self) -> Vec<(Vec<u64>, Vec<u64>)> {
        self.partitions
            .iter()
            .map(|p| {
                p.with_sync(|lists| {
                    (
                        lists.inactive.iter().copied().collect(),
                        lists.active.iter().copied().collect(),
                    )
                })
            })
            .collect()
    }

    /// Splices up to `want` pages off partition `idx` under its lock,
    /// refilling the inactive list from the active list if needed.
    async fn isolate(&self, idx: usize, want: usize) -> Vec<u64> {
        let mut lists = self.partitions[idx].lock().await;
        if lists.inactive.len() < want && !lists.active.is_empty() {
            // Demote from the active list to refill (bounded splice).
            let move_n = lists.active.len().min(want * 2);
            for _ in 0..move_n {
                let vpn = lists.active.pop_front().expect("non-empty");
                lists.inactive.push_back(vpn);
            }
            self.sim
                .sleep(self.costs.pop_per_page_ns * move_n as u64)
                .await;
        }
        let take = lists.inactive.len().min(want);
        let mut isolated = Vec::with_capacity(take);
        for _ in 0..take {
            isolated.push(lists.inactive.pop_front().expect("non-empty"));
        }
        self.sim
            .sleep(self.costs.list_op_ns + self.costs.pop_per_page_ns * take as u64)
            .await;
        isolated
    }

    /// Forgets `vpn` without evicting it (e.g. on unmap). Linear scan;
    /// only used on cold paths and in tests.
    pub async fn remove(&self, vpn: u64) -> bool {
        for p in &self.partitions {
            let mut lists = p.lock().await;
            if let Some(pos) = lists.inactive.iter().position(|&v| v == vpn) {
                lists.inactive.remove(pos);
                self.resident.set(self.resident.get() - 1);
                return true;
            }
            if let Some(pos) = lists.active.iter().position(|&v| v == vpn) {
                lists.active.remove(pos);
                self.resident.set(self.resident.get() - 1);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;
    use std::rc::Rc;

    fn rig(kind: AccountingKind) -> (Simulation, Rc<PageAccounting>) {
        let sim = Simulation::new();
        let acc = Rc::new(PageAccounting::new(
            sim.handle(),
            kind,
            AccountingCosts::default(),
        ));
        (sim, acc)
    }

    #[test]
    fn insert_then_evict_fifo_order() {
        let (sim, acc) = rig(AccountingKind::GlobalLru);
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for vpn in 0..10 {
                a.insert(0, vpn).await;
            }
            let mut victims = Vec::new();
            a.take_victims(0, 0, 4, &|_| false, &mut victims).await;
            assert_eq!(victims, vec![0, 1, 2, 3], "oldest first");
            assert_eq!(a.resident_pages(), 6);
        });
    }

    #[test]
    fn hot_pages_get_second_chance() {
        let (sim, acc) = rig(AccountingKind::GlobalLru);
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for vpn in 0..6 {
                a.insert(0, vpn).await;
            }
            // Pages 0 and 1 are hot on first inspection only.
            let hot = std::cell::RefCell::new(std::collections::BTreeSet::from([0u64, 1]));
            let is_hot = |vpn: u64| hot.borrow_mut().remove(&vpn);
            let mut victims = Vec::new();
            a.take_victims(0, 0, 2, &is_hot, &mut victims).await;
            assert_eq!(victims, vec![2, 3], "hot pages skipped");
            assert_eq!(a.stats().reactivated.get(), 2);
            // Next scan drains 4, 5 then wraps to the reactivated pages.
            victims.clear();
            a.take_victims(0, 1, 4, &is_hot, &mut victims).await;
            assert_eq!(victims, vec![4, 5, 0, 1]);
        });
    }

    #[test]
    fn fifo_queues_ignore_hotness() {
        let (sim, acc) = rig(AccountingKind::FifoQueues { partitions: 1 });
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for vpn in 0..4 {
                a.insert(0, vpn).await;
            }
            let mut victims = Vec::new();
            a.take_victims(0, 0, 4, &|_| true, &mut victims).await;
            assert_eq!(victims, vec![0, 1, 2, 3], "no recheck under FIFO");
            assert_eq!(a.stats().reactivated.get(), 0);
        });
    }

    #[test]
    fn partitioned_insert_spreads_by_core() {
        let (sim, acc) = rig(AccountingKind::PartitionedLru { partitions: 4 });
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for core in 0..32usize {
                a.insert(core, core as u64).await;
            }
        });
        // All four partitions should have received pages.
        let counts: Vec<u64> = (0..4)
            .map(|i| acc.partition_lock_stats(i).acquisitions())
            .collect();
        assert!(counts.iter().all(|&c| c > 0), "uneven spread: {counts:?}");
        assert_eq!(acc.resident_pages(), 32);
    }

    #[test]
    fn round_robin_scans_cover_all_partitions() {
        let (sim, acc) = rig(AccountingKind::PartitionedLru { partitions: 4 });
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for core in 0..64usize {
                a.insert(core, core as u64).await;
            }
            // One evictor must be able to drain everything even though
            // its start partition rotates.
            let mut victims = Vec::new();
            for round in 0..8 {
                a.take_victims(0, round, 8, &|_| false, &mut victims).await;
            }
            assert_eq!(victims.len(), 64);
            assert_eq!(a.resident_pages(), 0);
        });
    }

    #[test]
    fn partitioned_lru_reduces_lock_waiting() {
        // 8 inserters + 2 scanners on 1 vs 8 partitions: aggregated lock
        // wait time must drop with partitioning.
        fn run(kind: AccountingKind) -> u64 {
            let (sim, acc) = rig(kind);
            for core in 0..8usize {
                let a = Rc::clone(&acc);
                sim.spawn(async move {
                    for i in 0..50u64 {
                        a.insert(core, core as u64 * 1000 + i).await;
                    }
                });
            }
            for e in 0..2usize {
                let a = Rc::clone(&acc);
                sim.spawn(async move {
                    let mut v = Vec::new();
                    for round in 0..10 {
                        a.take_victims(e, round, 10, &|_| false, &mut v).await;
                    }
                });
            }
            sim.run();
            acc.lock_wait_sum_ns()
        }
        let global = run(AccountingKind::GlobalLru);
        let partitioned = run(AccountingKind::PartitionedLru { partitions: 8 });
        assert!(
            partitioned * 2 < global,
            "partitioned {partitioned} vs global {global}"
        );
    }

    #[test]
    fn clock_rotates_hot_pages_in_place() {
        let (sim, acc) = rig(AccountingKind::Clock { partitions: 1 });
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for vpn in 0..4 {
                a.insert(0, vpn).await;
            }
            // Page 0 is hot once: it must survive the first scan and be
            // re-evictable at the *tail* of the same queue.
            let hot = std::cell::Cell::new(true);
            let is_hot = |vpn: u64| vpn == 0 && hot.replace(false);
            let mut victims = Vec::new();
            a.take_victims(0, 0, 3, &is_hot, &mut victims).await;
            assert_eq!(victims, vec![1, 2, 3], "hot page skipped");
            victims.clear();
            a.take_victims(0, 1, 1, &is_hot, &mut victims).await;
            assert_eq!(victims, vec![0], "rotated page eventually evicted");
        });
    }

    #[test]
    fn s3fifo_ghost_promotes_refaulted_pages() {
        let (sim, acc) = rig(AccountingKind::S3Fifo { partitions: 1 });
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for vpn in 0..4 {
                a.insert(0, vpn).await;
            }
            let mut victims = Vec::new();
            a.take_victims(0, 0, 2, &|_| false, &mut victims).await;
            assert_eq!(victims, vec![0, 1]);
            // Page 0 refaults: the ghost hit must admit it to the main
            // (active) queue, so the next probation scan prefers 2 and 3.
            assert!(a.insert(0, 0).await, "refault must report a ghost hit");
            victims.clear();
            a.take_victims(0, 1, 2, &|_| false, &mut victims).await;
            assert_eq!(victims, vec![2, 3], "ghost-promoted page protected");
        });
    }

    #[test]
    fn ghost_detects_refaults_for_every_kind() {
        // The ghost list is measurement-only outside S3-FIFO, but the
        // re-fault signal must still fire.
        let (sim, acc) = rig(AccountingKind::GlobalLru);
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            for vpn in 0..4 {
                assert!(!a.insert(0, vpn).await, "fresh insert is no re-fault");
            }
            let mut victims = Vec::new();
            a.take_victims(0, 0, 2, &|_| false, &mut victims).await;
            assert_eq!(victims, vec![0, 1]);
            assert_eq!(a.ghost_len(), 2);
            assert!(a.ghost_contains(0) && a.ghost_contains(1));
            assert!(a.insert(0, 0).await, "refault detected");
            assert!(!a.ghost_contains(0), "ghost hit is consumed");
            // Placement is unchanged under non-S3-FIFO kinds: page 0 sits
            // at the probationary tail, not in the protected queue.
            let snap = a.queues_snapshot();
            assert_eq!(snap[0].0, vec![2, 3, 0]);
            assert!(snap[0].1.is_empty());
        });
    }

    #[test]
    fn ghost_list_is_bounded_and_consistent() {
        let mut g = GhostList::new(4);
        for vpn in 0..10 {
            g.record(vpn);
        }
        assert_eq!(g.len(), 4);
        assert!((6..10).all(|v| g.contains(v)));
        // Re-recording refreshes the position instead of duplicating.
        g.record(6);
        assert_eq!(g.len(), 4);
        g.record(100);
        assert!(g.contains(6), "refreshed entry outlives older ones");
        assert!(!g.contains(7), "oldest entry displaced");
        assert!(g.take(6));
        assert!(!g.take(6), "hit consumed");
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn remove_forgets_page() {
        let (sim, acc) = rig(AccountingKind::GlobalLru);
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            a.insert(0, 7).await;
            a.insert(0, 8).await;
            assert!(a.remove(7).await);
            assert!(!a.remove(7).await, "already removed");
            let mut victims = Vec::new();
            a.take_victims(0, 0, 2, &|_| false, &mut victims).await;
            assert_eq!(victims, vec![8]);
        });
    }
}
