//! Randomized tests: page accounting never loses or duplicates pages.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use mage_accounting::{AccountingCosts, AccountingKind, PageAccounting};
use mage_sim::rng::SplitMix64;
use mage_sim::Simulation;

fn kind_from(idx: u8, partitions: usize) -> AccountingKind {
    match idx % 3 {
        0 => AccountingKind::GlobalLru,
        1 => AccountingKind::PartitionedLru { partitions },
        _ => AccountingKind::FifoQueues { partitions },
    }
}

/// Every inserted page is eventually handed out exactly once as a victim
/// (when nothing is hot), regardless of structure, partition count,
/// interleaving, or batch sizes.
#[test]
fn pages_conserved_through_scans() {
    let rng = SplitMix64::new(0xC025_E12E);
    for case in 0..32u64 {
        let kind_idx = rng.next_below(3) as u8;
        let partitions = (1 + rng.next_below(8)) as usize;
        let pages = 1 + rng.next_below(399);
        let batch = (1 + rng.next_below(63)) as usize;
        let evictors = (1 + rng.next_below(4)) as usize;

        let sim = Simulation::new();
        let acct = Rc::new(PageAccounting::new(
            sim.handle(),
            kind_from(kind_idx, partitions),
            AccountingCosts::default(),
        ));
        // Insert from a rotating set of cores.
        {
            let acct = Rc::clone(&acct);
            let inserted = pages;
            sim.block_on(async move {
                for vpn in 0..inserted {
                    acct.insert((vpn % 13) as usize, vpn).await;
                }
            });
        }
        assert_eq!(acct.resident_pages(), pages);

        // Concurrent evictors drain everything.
        let victims: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for e in 0..evictors {
            let acct = Rc::clone(&acct);
            let victims = Rc::clone(&victims);
            sim.spawn(async move {
                let mut round = e;
                let mut idle = 0;
                while idle < 4 {
                    let mut out = Vec::new();
                    acct.take_victims(e, round, batch, &|_| false, &mut out).await;
                    round += 1;
                    if out.is_empty() {
                        idle += 1;
                    } else {
                        idle = 0;
                        victims.borrow_mut().extend(out);
                    }
                }
            });
        }
        sim.run();

        let got = victims.borrow();
        let set: BTreeSet<u64> = got.iter().copied().collect();
        assert_eq!(set.len(), got.len(), "case {case}: a page was handed out twice");
        assert_eq!(got.len() as u64, pages, "case {case}: pages lost in the lists");
        assert_eq!(acct.resident_pages(), 0);
    }
}

/// With a one-shot hotness oracle, hot pages are never the *first*
/// victims and are still evicted exactly once overall.
#[test]
fn second_chance_defers_but_never_duplicates() {
    let rng = SplitMix64::new(0x2ECD_CACE);
    for _ in 0..32 {
        let pages = 4 + rng.next_below(196);
        let hot_stride = 2 + rng.next_below(6);

        let sim = Simulation::new();
        let acct = Rc::new(PageAccounting::new(
            sim.handle(),
            AccountingKind::GlobalLru,
            AccountingCosts::default(),
        ));
        let hot: Rc<RefCell<BTreeSet<u64>>> = Rc::new(RefCell::new(
            (0..pages).filter(|v| v % hot_stride == 0).collect(),
        ));
        let acct2 = Rc::clone(&acct);
        let hot2 = Rc::clone(&hot);
        let victims = sim.block_on(async move {
            for vpn in 0..pages {
                acct2.insert(0, vpn).await;
            }
            let is_hot = |vpn: u64| hot2.borrow_mut().remove(&vpn);
            let mut out = Vec::new();
            let mut round = 0;
            while (out.len() as u64) < pages && round < 64 {
                acct2.take_victims(0, round, 32, &is_hot, &mut out).await;
                round += 1;
            }
            out
        });
        let set: BTreeSet<u64> = victims.iter().copied().collect();
        assert_eq!(set.len() as u64, pages, "duplicates or losses");
        // The first victim must be a cold page (hot pages got a second
        // chance), as long as there was at least one cold page.
        if pages > pages / hot_stride {
            assert!(!victims[0].is_multiple_of(hot_stride), "hot page evicted first");
        }
    }
}
