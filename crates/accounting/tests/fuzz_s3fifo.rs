//! Seeded differential fuzz of the S3-FIFO machinery against naive
//! shadow models, in the style of `fuzz_slab_wheel.rs`.
//!
//! Two layers are pinned:
//!
//! * [`GhostList`] — a bounded FIFO with O(log n) membership — must agree
//!   op-for-op with a plain `Vec` shadow that re-derives every answer by
//!   linear scan: same membership, same eviction of the oldest entry,
//!   same position refresh on re-record, and a hard capacity bound after
//!   every step.
//! * [`PageAccounting`] under [`AccountingKind::S3Fifo`] — a seeded
//!   insert / take-victims / remove stream must uphold the structural
//!   rules: the ghost list stays bounded, a ghost-hit insert lands in the
//!   main (protected) queue and a cold insert in the small (probationary)
//!   queue, no VPN ever sits in two queues at once, and residency always
//!   equals the total queued population.
//!
//! Everything is seeded [`SplitMix64`], so a failure reproduces
//! bit-for-bit from the printed seed and step.

use std::rc::Rc;

use mage_accounting::{AccountingCosts, AccountingKind, GhostList, PageAccounting};
use mage_sim::rng::SplitMix64;
use mage_sim::Simulation;

const SEEDS: [u64; 4] = [1, 42, 0xDEAD_BEEF, 0x5EED_5EED_5EED_5EED];

/// Naive shadow of [`GhostList`]: an unbounded-ops, linear-scan `Vec`
/// ordered oldest → newest.
struct ShadowGhost {
    cap: usize,
    order: Vec<u64>,
}

impl ShadowGhost {
    fn record(&mut self, vpn: u64) {
        if self.cap == 0 {
            return;
        }
        self.order.retain(|&v| v != vpn);
        self.order.push(vpn);
        while self.order.len() > self.cap {
            self.order.remove(0);
        }
    }

    fn take(&mut self, vpn: u64) -> bool {
        let had = self.order.contains(&vpn);
        self.order.retain(|&v| v != vpn);
        had
    }
}

#[test]
fn ghost_list_matches_linear_shadow() {
    for seed in SEEDS {
        let rng = SplitMix64::new(seed);
        // Small cap + narrow key space force constant displacement and
        // re-record refreshes.
        let cap = 32;
        let mut ghost = GhostList::new(cap);
        let mut shadow = ShadowGhost { cap, order: Vec::new() };
        for step in 0..20_000u64 {
            let vpn = rng.next_below(96);
            match rng.next_below(10) {
                0..=5 => {
                    ghost.record(vpn);
                    shadow.record(vpn);
                }
                6..=7 => {
                    assert_eq!(
                        ghost.take(vpn),
                        shadow.take(vpn),
                        "seed {seed} step {step}: take({vpn}) disagreed"
                    );
                }
                _ => {
                    assert_eq!(
                        ghost.contains(vpn),
                        shadow.order.contains(&vpn),
                        "seed {seed} step {step}: contains({vpn}) disagreed"
                    );
                }
            }
            assert_eq!(
                ghost.len(),
                shadow.order.len(),
                "seed {seed} step {step}: length disagreed"
            );
            assert!(
                ghost.len() <= ghost.capacity(),
                "seed {seed} step {step}: ghost over capacity"
            );
            if step % 1_000 == 0 {
                // Full-membership crosscheck.
                for &v in &shadow.order {
                    assert!(
                        ghost.contains(v),
                        "seed {seed} step {step}: {v} missing from ghost"
                    );
                }
            }
        }
    }
}

#[test]
fn s3fifo_accounting_upholds_queue_rules() {
    for seed in SEEDS {
        let sim = Simulation::new();
        let acc = Rc::new(PageAccounting::new(
            sim.handle(),
            AccountingKind::S3Fifo { partitions: 2 },
            AccountingCosts::default(),
        ));
        let a = Rc::clone(&acc);
        sim.block_on(async move {
            let rng = SplitMix64::new(seed);
            // Shadow residency set (BTreeSet iteration order is
            // deterministic, matching the repo's no-hash rule).
            let mut resident: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            let mut victims = Vec::new();
            for step in 0..2_000u64 {
                let vpn = rng.next_below(256);
                match rng.next_below(8) {
                    0..=4 => {
                        if resident.contains(&vpn) {
                            continue; // the engine never double-inserts
                        }
                        let was_ghost = a.ghost_contains(vpn);
                        let hit = a.insert(rng.next_below(8) as usize, vpn).await;
                        assert_eq!(
                            hit, was_ghost,
                            "seed {seed} step {step}: ghost hit misreported for {vpn}"
                        );
                        resident.insert(vpn);
                        // Promotion rule: ghost hits land in main
                        // (protected), cold inserts in small (probation).
                        let snap = a.queues_snapshot();
                        let in_main = snap.iter().any(|(_, main)| main.contains(&vpn));
                        let in_small = snap.iter().any(|(small, _)| small.contains(&vpn));
                        if was_ghost {
                            assert!(
                                in_main && !in_small,
                                "seed {seed} step {step}: ghost hit {vpn} not promoted to main"
                            );
                        } else {
                            assert!(
                                in_small && !in_main,
                                "seed {seed} step {step}: cold insert {vpn} not in probation"
                            );
                        }
                        assert!(
                            !a.ghost_contains(vpn),
                            "seed {seed} step {step}: resident {vpn} still ghosted"
                        );
                    }
                    5..=6 => {
                        victims.clear();
                        let want = (rng.next_below(8) + 1) as usize;
                        // Deterministic hotness: every third VPN is hot on
                        // inspection (exercises reactivation into main).
                        a.take_victims(0, step as usize, want, &|v: u64| v.is_multiple_of(3), &mut victims)
                            .await;
                        for &v in &victims {
                            assert!(
                                resident.remove(&v),
                                "seed {seed} step {step}: victim {v} was not resident"
                            );
                            assert!(
                                a.ghost_contains(v),
                                "seed {seed} step {step}: victim {v} not ghosted"
                            );
                        }
                    }
                    _ => {
                        let removed = a.remove(vpn).await;
                        assert_eq!(
                            removed,
                            resident.remove(&vpn),
                            "seed {seed} step {step}: remove({vpn}) disagreed"
                        );
                    }
                }
                // Structural invariants after every op.
                assert!(
                    a.ghost_len() <= GhostList::DEFAULT_CAP,
                    "seed {seed} step {step}: ghost unbounded"
                );
                let snap = a.queues_snapshot();
                let mut seen = std::collections::BTreeSet::new();
                let mut queued = 0u64;
                for (small, main) in &snap {
                    for &v in small.iter().chain(main.iter()) {
                        queued += 1;
                        assert!(
                            seen.insert(v),
                            "seed {seed} step {step}: {v} present in two queues"
                        );
                        assert!(
                            !a.ghost_contains(v),
                            "seed {seed} step {step}: queued {v} also ghosted"
                        );
                    }
                }
                assert_eq!(
                    queued,
                    a.resident_pages(),
                    "seed {seed} step {step}: residency drifted from the queues"
                );
                assert_eq!(
                    seen,
                    resident,
                    "seed {seed} step {step}: queue population drifted from the shadow"
                );
            }
        });
    }
}
