//! Randomized integration tests: seeded random machine shapes and access
//! mixes preserve the engine's safety and accounting invariants.

use std::rc::Rc;

use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use mage_far_memory::sim::rng::{self, SplitMix64};

/// Drives a random access mix on a random machine and returns
/// (major_faults, evicted, resident, free).
fn stress(
    system: SystemConfig,
    threads: u32,
    local_pages: u64,
    wss_pages: u64,
    ops: u32,
    seed: u64,
) -> (u64, u64, u64, u64) {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(threads + 6),
        app_threads: threads as usize,
        local_pages,
        remote_pages: wss_pages + 512,
        tlb_entries: 128,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(wss_pages);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..threads {
        let e = Rc::clone(&engine);
        joins.push(sim.spawn(async move {
            let stream = rng::stream(seed, t as u64);
            for _ in 0..ops {
                let page = stream.next_below(wss_pages);
                let write = stream.next_below(5) == 0;
                e.access(CoreId(t), vma.start_vpn + page, write).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();
    // Eviction-stats identity: every unmapped page settles as exactly one
    // of evicted, sync-evicted or cancelled (pages still in flight at
    // shutdown account for the difference), and a batch can never observe
    // more cancellations than faults performed.
    let s = engine.stats();
    let settled =
        s.evicted_pages.get() + s.sync_evicted_pages.get() + s.evict_cancelled_pages.get();
    assert!(
        settled <= s.unmapped_pages.get(),
        "settled {settled} > unmapped {}",
        s.unmapped_pages.get()
    );
    assert!(s.evict_cancelled_pages.get() <= s.evict_cancels.get());
    (
        engine.stats().major_faults.get(),
        engine.stats().evicted_pages.get() + engine.stats().sync_evicted_pages.get(),
        engine.accounting().resident_pages(),
        engine.allocator().free_frames(),
    )
}

/// For every system and random shape: runs terminate (no deadlock),
/// frames are conserved, and residency never exceeds the quota.
#[test]
fn engine_invariants_hold() {
    let rng = SplitMix64::new(0x1217_AB1E);
    for case in 0..12u64 {
        let system = match rng.next_below(4) {
            0 => SystemConfig::mage_lib(),
            1 => SystemConfig::mage_lnx(),
            2 => SystemConfig::dilos(),
            _ => SystemConfig::hermit(),
        };
        let threads = (1 + rng.next_below(8)) as u32;
        let local_frac = 3 + rng.next_below(6); // local = wss * frac / 10
        let wss_pages = 2_000 + rng.next_below(4_000);
        let ops = (500 + rng.next_below(1_000)) as u32;
        let seed = rng.next_below(1_000_000);
        let local_pages = (wss_pages * local_frac / 10).max(600);
        let (faults, evicted, resident, free) =
            stress(system, threads, local_pages, wss_pages, ops, seed);

        // Terminated (this line being reached) and produced work.
        assert!(faults + evicted < u64::MAX);
        // No over-commit: resident + free never exceeds the quota.
        assert!(
            resident + free <= local_pages,
            "case {case}: resident {resident} + free {free} > quota {local_pages}",
        );
        // No massive leak: the unaccounted slack is bounded by the
        // eviction pipeline's in-flight capacity.
        let slack = local_pages - (resident + free);
        assert!(
            slack <= 4 * 256 * 3 + 64,
            "case {case}: {slack} frames unaccounted"
        );
    }
}

/// Determinism: same shape, same seed → identical outcome for randomly
/// chosen configurations.
#[test]
fn determinism_for_random_shapes() {
    let rng = SplitMix64::new(0xD373_0000);
    for _ in 0..4 {
        let threads = (1 + rng.next_below(5)) as u32;
        let wss_pages = 2_000 + rng.next_below(2_000);
        let seed = rng.next_below(100_000);
        let a = stress(
            SystemConfig::mage_lib(),
            threads,
            wss_pages / 2,
            wss_pages,
            600,
            seed,
        );
        let b = stress(
            SystemConfig::mage_lib(),
            threads,
            wss_pages / 2,
            wss_pages,
            600,
            seed,
        );
        assert_eq!(a, b);
    }
}
