//! Integration tests for the pluggable trait seams: every
//! [`EvictionPolicy`] implementation and every [`FarBackend`]
//! implementation must run the full engine end-to-end while preserving
//! the safety invariants the default configuration guarantees.

use std::rc::Rc;

use mage_far_memory::engine::backend::{FarBackend, LocalBoxFuture, RdmaBackend};
use mage_far_memory::engine::reclaim::EvictionPolicy;
use mage_far_memory::mmu::{PageTable, Topology, Vma};
use mage_far_memory::prelude::*;

fn launch(system: SystemConfig, seed: u64) -> (Simulation, Rc<FarMemory>, Vma) {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: 512,
        remote_pages: 4_096,
        tlb_entries: 64,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(1_024);
    engine.populate(&vma);
    (sim, engine, vma)
}

/// Two rounds over the working set, forcing heavy eviction traffic.
fn churn(sim: &Simulation, engine: &Rc<FarMemory>, vma: &Vma) {
    let e = Rc::clone(engine);
    let vma = vma.clone();
    sim.block_on(async move {
        for round in 0..2 {
            for i in 0..vma.pages {
                e.access(CoreId((i % 4) as u32), vma.start_vpn + i, round == 0)
                    .await;
            }
        }
    });
    engine.shutdown();
}

/// The invariants every configuration must uphold after churn: frame
/// conservation, eviction progress, a consistent stats identity, and no
/// stale TLB entry for any remote page.
fn assert_safe(engine: &Rc<FarMemory>, vma: &Vma, label: &str) {
    let resident = engine.accounting().resident_pages();
    let free = engine.allocator().free_frames();
    assert!(
        resident + free <= 512,
        "{label}: resident {resident} + free {free} over-commits"
    );
    assert!(
        engine.stats().evicted_pages.get() > 0,
        "{label}: no eviction progress"
    );
    let s = engine.stats();
    let settled =
        s.evicted_pages.get() + s.sync_evicted_pages.get() + s.evict_cancelled_pages.get();
    assert!(
        settled <= s.unmapped_pages.get(),
        "{label}: settled {settled} > unmapped {}",
        s.unmapped_pages.get()
    );
    assert!(
        s.major_faults.get() > vma.pages / 4,
        "{label}: churn produced too few faults"
    );
}

/// Every shipped eviction policy drives the engine end-to-end under the
/// same seed and upholds the same invariants (policy parity).
#[test]
fn every_policy_preserves_invariants() {
    let policies = [
        EvictionPolicyKind::SecondChance,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::AgingClock { hot_rounds: 3 },
        EvictionPolicyKind::S3Fifo,
        EvictionPolicyKind::ApproxLru,
    ];
    for kind in policies {
        let system = SystemConfig::mage_lib().with_eviction_policy(kind);
        let (sim, engine, vma) = launch(system, 21);
        assert_eq!(engine.eviction_policy().name(), kind.name());
        churn(&sim, &engine, &vma);
        assert_safe(&engine, &vma, kind.name());
        assert_eq!(
            engine.stats().sync_evictions.get(),
            0,
            "{}: MAGE P1 must hold for every policy",
            kind.name()
        );
    }
}

/// Selecting the S3-FIFO policy must also install the matching
/// small/main/ghost accounting structure, preserving the preset's
/// partition count; other policies leave the accounting untouched.
#[test]
fn s3fifo_policy_pairs_with_s3fifo_accounting() {
    let system = SystemConfig::mage_lib().with_eviction_policy(EvictionPolicyKind::S3Fifo);
    let (_sim, engine, _vma) = launch(system, 21);
    assert_eq!(engine.eviction_policy().name(), "s3-fifo");
    assert_eq!(
        engine.accounting().kind(),
        mage_far_memory::accounting::AccountingKind::S3Fifo { partitions: 8 },
        "policy selection must switch the accounting structure"
    );

    let plain = SystemConfig::mage_lib().with_eviction_policy(EvictionPolicyKind::ApproxLru);
    let (_sim2, engine2, _vma2) = launch(plain, 21);
    assert_eq!(
        engine2.accounting().kind(),
        mage_far_memory::accounting::AccountingKind::PartitionedLru { partitions: 8 },
        "non-S3-FIFO policies keep the preset accounting"
    );
}

/// Same seed, same accesses: a policy swap changes *which* pages are
/// evicted but never the total amount of work the application observes.
#[test]
fn policy_swap_conserves_accesses() {
    let mut totals = Vec::new();
    for kind in [EvictionPolicyKind::SecondChance, EvictionPolicyKind::Fifo] {
        let system = SystemConfig::mage_lib().with_eviction_policy(kind);
        let (sim, engine, vma) = launch(system, 21);
        churn(&sim, &engine, &vma);
        totals.push(engine.stats().accesses.get());
    }
    assert_eq!(totals[0], totals[1], "access count is policy-independent");
}

/// Both shipped backends drive the engine end-to-end; the disaggregated
/// tier additionally must re-write clean pages (pooled slots) and pay the
/// switch hop on reads.
#[test]
fn backend_swap_preserves_invariants() {
    for (kind, expect_name) in [
        (BackendKind::Rdma, "rdma"),
        (BackendKind::DisaggTier { hop_ns: 1_000 }, "disagg-tier"),
    ] {
        let system = SystemConfig::mage_lib().with_backend_kind(kind);
        let (sim, engine, vma) = launch(system, 33);
        assert_eq!(engine.backend().name(), expect_name);
        churn(&sim, &engine, &vma);
        assert_safe(&engine, &vma, expect_name);
    }
}

/// The disaggregated tier forces writebacks for clean pages; under the
/// same run the RDMA direct-map backend reclaims clean pages for free.
#[test]
fn disagg_tier_rewrites_clean_pages() {
    let mut clean_reclaims = Vec::new();
    for kind in [BackendKind::Rdma, BackendKind::DisaggTier { hop_ns: 500 }] {
        let system = SystemConfig::mage_lib().with_backend_kind(kind);
        let (sim, engine, vma) = launch(system, 5);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Read-only traffic: pages stay clean after their first
            // writeback, so direct mapping can skip re-writing them.
            for round in 0..3 {
                let _ = round;
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, false).await;
                }
            }
        });
        engine.shutdown();
        clean_reclaims.push(engine.stats().clean_reclaims.get());
    }
    assert!(
        clean_reclaims[0] > 0,
        "direct mapping must reclaim clean pages without writes"
    );
    assert_eq!(
        clean_reclaims[1], 0,
        "pooled slots invalidate the old copy: every eviction writes"
    );
}

/// A user-supplied backend plugs in through `BackendKind::Custom` with no
/// engine edits: here, an RDMA backend wrapped with a transfer counter.
#[test]
fn custom_backend_plugs_in() {
    struct CountingBackend {
        inner: RdmaBackend,
    }

    impl FarBackend for CountingBackend {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn read_page(&self, bytes: u64) -> mage_far_memory::fabric::Completion {
            self.inner.read_page(bytes)
        }
        fn write_page(&self, bytes: u64) -> mage_far_memory::fabric::Completion {
            self.inner.write_page(bytes)
        }
        fn alloc_slot<'a>(&'a self, direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>> {
            self.inner.alloc_slot(direct_rpn)
        }
        fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()> {
            self.inner.release_slot(rpn)
        }
        fn seed_slot(&self, direct_rpn: u64) -> Option<u64> {
            self.inner.seed_slot(direct_rpn)
        }
        fn writes_clean_pages(&self) -> bool {
            self.inner.writes_clean_pages()
        }
        fn link(&self) -> &Rc<mage_far_memory::fabric::Nic> {
            self.inner.link()
        }
        fn node(&self) -> &mage_far_memory::fabric::MemoryNode {
            self.inner.node()
        }
    }

    let system = SystemConfig::mage_lib().with_backend_kind(BackendKind::Custom {
        name: "counting",
        build: |sim, cfg, remote_pages| {
            Box::new(CountingBackend {
                inner: RdmaBackend::new(sim, cfg, remote_pages),
            })
        },
    });
    let (sim, engine, vma) = launch(system, 9);
    assert_eq!(engine.backend().name(), "counting");
    churn(&sim, &engine, &vma);
    assert!(engine.nic().stats().reads.get() > 0, "reads flowed through");
}

/// Zero-fault parity: with the default `FaultPlan::none()` the fault
/// layer must be bit-invisible — these golden statistics were captured
/// before the fault-injection layer existed, and the default
/// configuration must still reproduce them exactly. Any drift means the
/// clean path now consumes RNG draws, schedules extra events, or awaits
/// differently than it used to.
#[test]
fn zero_fault_path_matches_pre_fault_layer_golden_values() {
    use mage_far_memory::workloads::runner::{run_batch, RunConfig};
    use mage_far_memory::workloads::WorkloadKind;

    let mut a = RunConfig::new(SystemConfig::mage_lib(), WorkloadKind::SeqFault, 2, 2048, 0.5);
    a.all_remote = true;
    a.ops_per_thread = 1024;
    a.seed = 0xA11CE;
    let ra = run_batch(&a);
    let got_a = (
        ra.runtime_ns,
        ra.total_ops,
        ra.major_faults,
        ra.fault_p50_ns,
        ra.fault_p99_ns,
        ra.evicted_pages,
        ra.sync_evictions,
        ra.evict_cancels,
        ra.fault_mean_ns.to_bits(),
    );
    assert_eq!(
        got_a,
        (5_396_662, 2_048, 2_048, 5_119, 9_471, 1_964, 0, 0, 4_662_422_839_683_448_832),
        "mage_lib/SeqFault drifted from the pre-fault-layer schedule"
    );

    let mut b = RunConfig::new(SystemConfig::hermit(), WorkloadKind::Gups, 4, 2048, 0.5);
    b.ops_per_thread = 500;
    b.seed = 7;
    let rb = run_batch(&b);
    let got_b = (
        rb.runtime_ns,
        rb.total_ops,
        rb.major_faults,
        rb.fault_p50_ns,
        rb.fault_p99_ns,
        rb.evicted_pages,
        rb.sync_evictions,
        rb.evict_cancels,
        rb.fault_mean_ns.to_bits(),
    );
    assert_eq!(
        got_b,
        (1_110_675, 2_000, 521, 7_807, 15_359, 410, 0, 101, 4_664_748_314_519_089_569),
        "hermit/Gups drifted from the pre-fault-layer schedule"
    );

    // And the fault-layer counters must read zero on a clean link.
    assert_eq!(ra.transfer_retries + rb.transfer_retries, 0);
    assert_eq!(ra.transfer_failures + rb.transfer_failures, 0);
    assert_eq!(ra.aborted_faults + rb.aborted_faults, 0);
    assert_eq!(ra.requeued_victims + rb.requeued_victims, 0);

    // The ghost-feedback counters are measurement-only on the default
    // path: they must flow into the report (hermit/Gups cancels 101
    // evictions, each a ghost hit) without having moved the pinned
    // schedules above.
    assert!(rb.re_faults > 0, "hermit/Gups churn must observe re-faults");
    assert!(ra.ghost_hits >= ra.re_faults, "re-faults are ghost hits");
    assert!(rb.ghost_hits >= rb.re_faults, "re-faults are ghost hits");
}

/// A user-supplied policy plugs in through `EvictionPolicyKind::Custom`.
#[test]
fn custom_policy_plugs_in() {
    struct EvictEverything;
    impl EvictionPolicy for EvictEverything {
        fn name(&self) -> &'static str {
            "evict-everything"
        }
        fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
            pt.update(vpn, |p| p.with_accessed(false));
            false
        }
    }

    let system = SystemConfig::mage_lib().with_eviction_policy(EvictionPolicyKind::Custom {
        name: "evict-everything",
        build: || Box::new(EvictEverything),
    });
    let (sim, engine, vma) = launch(system, 13);
    assert_eq!(engine.eviction_policy().name(), "evict-everything");
    churn(&sim, &engine, &vma);
    assert_safe(&engine, &vma, "evict-everything");
}
