//! mage-check integration suite: seeded schedule exploration with the
//! invariant registry and the differential reference model (DESIGN.md
//! §9).
//!
//! - the default sweep runs ≥ 64 seeded schedules across two fault-plan
//!   families and three exploration policies with zero violations;
//! - a deliberately broken settlement counter (test-only toggle) is
//!   caught by the oracle and shrunk to a minimal reproducer, printed as
//!   a single `MAGE_CHECK_SEED=…` line;
//! - `replay_cell` re-runs one cell from `MAGE_CHECK_*` environment
//!   variables, which is exactly what the printed repro line does;
//! - `ExplorationPolicy::Fifo` reproduces the default executor schedule
//!   bit-for-bit (stats, polls and virtual time all identical).

use std::rc::Rc;

use mage_check::{explore, run_cell, Cell, CheckOptions, ExploreOutcome, PolicyKind};
use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use mage_far_memory::sim::ExplorationPolicy;

/// The acceptance sweep: 64 cells across 2 fault-plan families and all
/// three exploration policies, every oracle clean.
#[test]
fn explores_64_seeded_schedules_with_zero_violations() {
    let cells = Cell::sweep(64, 2);
    assert!(cells.len() >= 64);
    assert!(
        cells.iter().any(|c| c.plan == 0) && cells.iter().any(|c| c.plan == 1),
        "sweep must cover two fault-plan families"
    );
    match explore(&cells, &CheckOptions::default(), 16) {
        ExploreOutcome::Clean {
            cells,
            polls,
            major_faults,
        } => {
            assert_eq!(cells, 64);
            assert!(polls > 0);
            assert!(
                major_faults > 10_000,
                "the sweep must exercise heavy paging, got {major_faults} faults"
            );
        }
        ExploreOutcome::Failed { original, shrunk } => panic!(
            "cell {original:?} violates '{}'; minimal repro:\n{}",
            shrunk.violation,
            shrunk.cell.repro_line()
        ),
    }
}

/// The same acceptance sweep under the S3-FIFO eviction policy: the new
/// ghost-feedback machinery (synchronous ghost updates on the fault
/// path, ghost-hit promotion into the main queue) must uphold every
/// oracle — reference model, whole-machine invariants and the simsan
/// race detector — across 64 seeded schedules, including SeededRandom
/// and PriorityFuzz interleavings.
#[test]
fn s3fifo_survives_64_seeded_schedules_with_zero_violations() {
    let cells = Cell::sweep(64, 2);
    let opts = CheckOptions {
        eviction_policy: EvictionPolicyKind::S3Fifo,
        ..CheckOptions::default()
    };
    match explore(&cells, &opts, 16) {
        ExploreOutcome::Clean {
            cells,
            polls,
            major_faults,
        } => {
            assert_eq!(cells, 64);
            assert!(polls > 0);
            assert!(
                major_faults > 10_000,
                "the sweep must exercise heavy paging, got {major_faults} faults"
            );
        }
        ExploreOutcome::Failed { original, shrunk } => panic!(
            "S3-FIFO cell {original:?} violates '{}'; minimal repro:\n{}",
            shrunk.violation,
            shrunk.cell.repro_line()
        ),
    }
}

/// A deliberately broken invariant (the historical finalize-batch
/// double-count, resurrected by the test-only config toggle) is caught,
/// shrunk across every dimension, and reported as a one-line repro.
#[test]
fn broken_settlement_is_caught_and_shrunk() {
    let opts = CheckOptions {
        wss_pages: 256,
        local_pages: 96,
        phases: 1,
        break_settlement: true,
        ..CheckOptions::default()
    };
    let cells = [Cell {
        seed: 5,
        plan: 3,
        ops: 512,
        threads: 4,
        policy: PolicyKind::SeededRandom,
    }];
    let ExploreOutcome::Failed { original, shrunk } = explore(&cells, &opts, 48) else {
        panic!("the broken settlement counter was not caught");
    };
    assert_eq!(original, cells[0]);
    assert_eq!(shrunk.violation.name(), "settlement", "got {}", shrunk.violation);

    // The shrinker must actually minimize: the bug needs no fault plan,
    // no concurrency and no particular seed.
    assert_eq!(shrunk.cell.plan, 0, "settlement bug needs no fault plan");
    assert_eq!(shrunk.cell.threads, 1, "settlement bug needs one thread");
    assert_eq!(shrunk.cell.seed, 0, "settlement bug fails under the canonical seed");
    assert!(shrunk.cell.ops <= original.ops);
    assert!(shrunk.runs <= 48);

    // The minimal reproducer still fails, and its repro command is a
    // single line.
    let replayed = run_cell(&shrunk.cell, &opts).unwrap_err();
    assert_eq!(replayed.name(), "settlement");
    let line = shrunk.cell.repro_line();
    assert_eq!(line.lines().count(), 1, "repro must be one line");
    assert!(line.starts_with("MAGE_CHECK_SEED="));
    println!("{line}");
}

/// Replicated cells survive exploration: the same oracles (plus the
/// replica-coverage and replica-transition invariants) hold when every
/// cell runs on a two-node [`ReplicatedBackend`] under staggered node
/// crashes and schedule perturbation.
#[test]
fn replicated_cells_survive_exploration() {
    let cells = Cell::sweep(12, 2);
    let opts = CheckOptions {
        replicate: true,
        ..CheckOptions::default()
    };
    match explore(&cells, &opts, 16) {
        ExploreOutcome::Clean { cells, major_faults, .. } => {
            assert_eq!(cells, 12);
            assert!(major_faults > 1_000, "got {major_faults} faults");
        }
        ExploreOutcome::Failed { original, shrunk } => panic!(
            "replicated cell {original:?} violates '{}'; minimal repro:\n{}",
            shrunk.violation,
            shrunk.cell.repro_line()
        ),
    }
}

/// The planted skipped-backup-repair bug (`break_rereplication`) is
/// caught by the ≥1-live-replica invariant under both the deterministic
/// Fifo schedule and SeededRandom exploration, and shrinks to a one-line
/// repro: after a backup replica is wiped and silently never repaired,
/// the next outage of the *primary's* node leaves the page with zero
/// live replicas.
#[test]
fn broken_rereplication_is_caught_and_shrunk() {
    for policy in [PolicyKind::Fifo, PolicyKind::SeededRandom] {
        let opts = CheckOptions {
            wss_pages: 256,
            local_pages: 96,
            phases: 2,
            replicate: true,
            break_rereplication: true,
            ..CheckOptions::default()
        };
        let cells = [Cell {
            seed: 5,
            plan: 0,
            ops: 512,
            threads: 4,
            policy,
        }];
        let ExploreOutcome::Failed { original, shrunk } = explore(&cells, &opts, 24) else {
            panic!("the skipped backup repair was not caught under {policy:?}");
        };
        assert_eq!(original, cells[0]);
        assert_eq!(
            shrunk.violation.name(),
            "replica-unreachable",
            "got {}",
            shrunk.violation
        );

        // The minimal reproducer still fails the same way, and its repro
        // command is a single line.
        let replayed = run_cell(&shrunk.cell, &opts).unwrap_err();
        assert_eq!(replayed.name(), "replica-unreachable");
        let line = shrunk.cell.repro_line();
        assert_eq!(line.lines().count(), 1, "repro must be one line");
        assert!(line.starts_with("MAGE_CHECK_SEED="));
        println!("[{}] {line}", policy.name());
    }
}

/// Replays one cell from `MAGE_CHECK_*` environment variables — the
/// target of every printed repro line. Without the variables it runs the
/// default cell, so the test is meaningful in a plain suite run too.
/// `MAGE_CHECK_BREAK` additionally enables a planted bug, for replaying
/// the synthetic-bug demonstrations: `settlement` (or the historical
/// `1`) resurrects the settlement double-count, `publish` the unlocked
/// PTE re-publish that only the race detector can see, and
/// `rereplication` the skipped backup repair (which also turns
/// replication on, since the bug only exists there).
#[test]
fn replay_cell() {
    let cell = Cell::from_env().unwrap_or_default();
    let broken = std::env::var("MAGE_CHECK_BREAK").ok();
    let opts = CheckOptions {
        break_settlement: matches!(broken.as_deref(), Some("1") | Some("settlement")),
        break_publish: broken.as_deref() == Some("publish"),
        replicate: broken.as_deref() == Some("rereplication"),
        break_rereplication: broken.as_deref() == Some("rereplication"),
        ..CheckOptions::default()
    };
    match run_cell(&cell, &opts) {
        Ok(report) => println!(
            "replay clean: {} polls, {} major faults, {} events",
            report.polls, report.major_faults, report.events
        ),
        Err(v) => panic!(
            "replayed cell violates '{v}'\nrepro: {}",
            cell.repro_line()
        ),
    }
}

/// Stats-and-schedule digest of a fixed multi-threaded churn workload.
fn churn_digest(sim: Simulation) -> [u64; 10] {
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: 256,
        remote_pages: 4_096,
        tlb_entries: 64,
        seed: 11,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let vma = engine.mmap(512);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let e = Rc::clone(&engine);
        let start = vma.start_vpn;
        joins.push(sim.spawn(async move {
            for i in 0..384u64 {
                let vpn = start + (i * 7 + t * 13) % 512;
                e.access(CoreId(t as u32), vpn, i % 3 == 0).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();
    let s = engine.stats();
    [
        s.accesses.get(),
        s.tlb_hits.get(),
        s.minor_walks.get(),
        s.major_faults.get(),
        s.evicted_pages.get(),
        s.sync_evicted_pages.get(),
        s.unmapped_pages.get(),
        s.evict_cancelled_pages.get(),
        sim.polls(),
        sim.handle().now().as_nanos(),
    ]
}

/// Golden-schedule parity: the explicit Fifo policy is bit-for-bit the
/// default executor schedule — identical stats, poll count and final
/// virtual time. (tests/seams.rs independently pins the default
/// schedule's absolute values, so together these prove the exploration
/// hook did not move the golden schedules.)
#[test]
fn fifo_policy_reproduces_the_default_schedule_bit_for_bit() {
    let default_digest = churn_digest(Simulation::new());
    let fifo_digest = churn_digest(Simulation::with_policy(ExplorationPolicy::Fifo));
    assert_eq!(default_digest, fifo_digest);
}

/// Exploration genuinely perturbs schedules: a random policy visits a
/// different interleaving of the same workload (different poll/time
/// digest) while the workload still completes and settles cleanly.
#[test]
fn random_policies_visit_different_schedules() {
    let fifo = churn_digest(Simulation::new());
    let random = churn_digest(Simulation::with_policy(ExplorationPolicy::SeededRandom {
        seed: 0xE5C4_0B1A,
    }));
    // Same workload, same accesses.
    assert_eq!(fifo[0], random[0]);
    // A genuinely different schedule: some observable differs.
    assert_ne!(fifo, random, "random policy replayed the FIFO schedule");
    // And the same random seed reproduces its schedule exactly.
    let again = churn_digest(Simulation::with_policy(ExplorationPolicy::SeededRandom {
        seed: 0xE5C4_0B1A,
    }));
    assert_eq!(random, again);
}
