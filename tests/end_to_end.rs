//! Cross-crate integration tests: full machines running full workloads,
//! checking system-level invariants that no single crate can check alone.

use std::rc::Rc;

use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use mage_far_memory::sim::rng;

fn run(system: SystemConfig, kind: WorkloadKind, threads: usize, local: f64) -> RunReport {
    let mut cfg = RunConfig::new(system, kind, threads, 16_384, local);
    cfg.ops_per_thread = 3_000;
    cfg.topo = Topology::single_socket(threads as u32 + 8);
    run_batch(&cfg)
}

#[test]
fn all_systems_complete_all_workloads() {
    for system in [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
        SystemConfig::ideal(),
    ] {
        for kind in [
            WorkloadKind::RandomGraph,
            WorkloadKind::SeqScan,
            WorkloadKind::Gups,
            WorkloadKind::Metis,
        ] {
            let r = run(system.clone(), kind, 8, 0.6);
            assert_eq!(r.total_ops, 24_000, "{} {kind:?}", system.name);
            assert!(r.major_faults > 0, "{} {kind:?} must fault", system.name);
            assert!(r.runtime_ns > 0);
        }
    }
}

#[test]
fn determinism_across_identical_runs() {
    for system in [SystemConfig::mage_lib(), SystemConfig::hermit()] {
        let a = run(system.clone(), WorkloadKind::RandomGraph, 8, 0.5);
        let b = run(system, WorkloadKind::RandomGraph, 8, 0.5);
        assert_eq!(a.runtime_ns, b.runtime_ns);
        assert_eq!(a.major_faults, b.major_faults);
        assert_eq!(a.evicted_pages, b.evicted_pages);
        assert_eq!(a.fault_p99_ns, b.fault_p99_ns);
        assert_eq!(a.faults_per_thread, b.faults_per_thread);
    }
}

#[test]
fn different_seeds_change_random_workloads() {
    let mut cfg = RunConfig::new(
        SystemConfig::mage_lib(),
        WorkloadKind::RandomGraph,
        4,
        16_384,
        0.5,
    );
    cfg.ops_per_thread = 3_000;
    let a = run_batch(&cfg);
    cfg.seed = 1234;
    let b = run_batch(&cfg);
    assert_ne!(a.major_faults, b.major_faults);
}

#[test]
fn mage_never_syncs_baselines_do_under_pressure() {
    let mage = run(SystemConfig::mage_lib(), WorkloadKind::RandomGraph, 16, 0.3);
    assert_eq!(mage.sync_evictions, 0, "P1: no synchronous eviction, ever");
    let hermit = run(SystemConfig::hermit(), WorkloadKind::RandomGraph, 16, 0.3);
    assert!(
        hermit.sync_evictions > 0,
        "Hermit falls back under pressure"
    );
}

#[test]
fn frame_conservation_under_stress() {
    // After an eviction-heavy run, every frame is either free or mapped
    // by exactly one present PTE.
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(12),
        app_threads: 8,
        local_pages: 2_048,
        remote_pages: 32_768,
        tlb_entries: 256,
        seed: 3,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let vma = engine.mmap(16_384);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..8u32 {
        let e = Rc::clone(&engine);
        joins.push(sim.spawn(async move {
            let stream = rng::stream(123, t as u64);
            for _ in 0..4_000 {
                let page = stream.next_below(16_384);
                let write = stream.next_below(7) == 0;
                e.access(CoreId(t), vma.start_vpn + page, write).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();

    // Count present pages via the public access surface of the engine.
    let resident = engine.accounting().resident_pages();
    let free = engine.allocator().free_frames();
    // Frames still mid-pipeline in the evictors are the only slack.
    assert!(
        resident + free <= 2_048,
        "resident {resident} + free {free} exceeds the local quota"
    );
    let slack = 2_048 - (resident + free);
    assert!(
        slack <= 4 * 256 * 3,
        "too many frames unaccounted: resident {resident} free {free}"
    );
}

#[test]
fn remote_capacity_is_respected() {
    // Offloading more pages than the remote node exports must fail fast.
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(4),
        app_threads: 2,
        local_pages: 1_024,
        remote_pages: 1_024,
        tlb_entries: 64,
        seed: 1,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.mmap(10_000_000)));
    assert!(result.is_err(), "oversized mmap must be rejected");
}

#[test]
fn open_loop_and_memcached_agree_on_direction() {
    // Higher load must not lower tail latency, for both the raw fault
    // driver and the memcached service.
    let lo = run_open_loop_faults(
        SystemConfig::mage_lib(),
        8,
        100_000,
        0.5,
        0.5,
        10_000_000,
        1,
    );
    let hi = run_open_loop_faults(
        SystemConfig::mage_lib(),
        8,
        100_000,
        0.5,
        4.0,
        10_000_000,
        1,
    );
    assert!(hi.p99_ns >= lo.p99_ns);

    let mut mc = MemcachedConfig::paper(SystemConfig::mage_lib(), 20_000);
    mc.workers = 8;
    mc.duration_ns = 10_000_000;
    mc.load_mops = 0.2;
    let lo = run_memcached(&mc);
    mc.load_mops = 1.0;
    let hi = run_memcached(&mc);
    assert!(hi.p99_ns >= lo.p99_ns);
}

#[test]
fn ideal_model_bounds_real_systems() {
    // The analytic ideal throughput computed from a real run's fault
    // counts must upper-bound what the simulated systems achieve.
    let r = run(SystemConfig::mage_lib(), WorkloadKind::RandomGraph, 8, 0.5);
    let ideal = IdealModel::paper();
    let compute_only_ns = r
        .runtime_ns
        .saturating_sub(ideal.rdma_latency_ns * r.faults_per_thread.iter().max().unwrap());
    let ideal_runtime = ideal.runtime_ns(compute_only_ns, &r.faults_per_thread);
    assert!(
        ideal_runtime <= r.runtime_ns,
        "ideal {ideal_runtime} must not exceed measured {}",
        r.runtime_ns
    );
}
