//! Chaos suite: seeded fault-injection sweeps over the whole engine.
//!
//! Every run drives heavy fault-in + eviction churn through a faulty
//! fabric (transfer errors, latency spikes, link brownouts, remote-node
//! crash windows) and then checks the safety invariants that must hold
//! no matter what the link does:
//!
//! (a) no frame is reclaimed while a stale TLB entry still translates
//!     its page — every remote PTE implies every core's TLB misses;
//! (b) the settlement identity
//!     `evicted + sync + cancelled + requeued ≤ unmapped`;
//! (c) no page is lost: every VMA page is either resident or still
//!     reachable remotely, even after aborted fault-ins and requeued
//!     writebacks.
//!
//! The sweep covers ≥ 64 (system × fault-plan × seed) cells. Each assert
//! carries the cell label and seed so a failing run can be replayed in
//! isolation.

use std::rc::Rc;

use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;

const CORES: u32 = 8;
const THREADS: usize = 4;
const VMA_PAGES: u64 = 512;

/// Frequent transient CQ errors plus latency spikes: exercises the
/// bounded-retry path on both fault-in reads and eviction writes.
fn errors(rate: f64, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        error_rate: rate,
        spike_rate: 0.1,
        spike_ns: 20_000,
        ..FaultPlan::none()
    }
}

/// Periodic bandwidth-collapse windows of the given width.
fn brownouts(duration_ns: u64, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        error_rate: 0.02,
        brownout_period_ns: 400_000,
        brownout_duration_ns: duration_ns,
        brownout_rate: 0.5,
        brownout_bw_div: 8,
        ..FaultPlan::none()
    }
}

/// Remote-node crash/recovery windows: ops fail fast while down.
fn crashes(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        crash_period_ns: 500_000,
        crash_duration_ns: 60_000,
        crash_rate: 0.5,
        ..FaultPlan::none()
    }
}

struct ChaosOutcome {
    transfer_retries: u64,
    requeued_victims: u64,
    failed_accesses: u64,
}

/// One chaos cell: launch, churn two rounds over the working set under
/// the fault plan, then check every invariant. `label` and `seed` are
/// echoed in every assert for replay.
fn chaos_run(system: SystemConfig, plan: FaultPlan, label: &str, seed: u64) -> ChaosOutcome {
    let retry = RetryPolicy {
        max_retries: 2,
        ..RetryPolicy::default()
    };
    let system = system.with_faults(plan).with_retry(retry);
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(CORES),
        app_threads: THREADS,
        local_pages: 256,
        remote_pages: 4_096,
        tlb_entries: 64,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(VMA_PAGES);
    engine.populate(&vma);

    let e = Rc::clone(&engine);
    let v = vma.clone();
    let failed_accesses = sim.block_on(async move {
        let mut failed = 0u64;
        for round in 0..2 {
            for i in 0..v.pages {
                let core = CoreId((i % THREADS as u64) as u32);
                let access = e.access(core, v.start_vpn + i, round == 0).await;
                if matches!(access, Access::Failed { .. }) {
                    failed += 1;
                }
            }
        }
        failed
    });
    engine.shutdown();

    // (a) Settled remote page ⇒ no core still translates it. A page
    // that is remote *and locked* is mid-eviction: its frame is not
    // reclaimed until the shootdown ack arrives and finalize unlocks
    // it, so a TLB entry there is not stale — shutdown can freeze a
    // batch between unmap and ack.
    for i in 0..vma.pages {
        let vpn = vma.start_vpn + i;
        let pte = engine.page_table().get(vpn);
        if pte.is_remote() && !pte.locked() {
            for c in 0..CORES {
                assert!(
                    !engine.interrupts().tlb(CoreId(c)).translates(vpn),
                    "[{label} seed={seed}] stale TLB entry: core {c} still \
                     translates remote vpn {vpn}"
                );
            }
        }
    }

    // (b) Settlement identity with the requeue term.
    let s = engine.stats();
    let settled = s.evicted_pages.get()
        + s.sync_evicted_pages.get()
        + s.evict_cancelled_pages.get()
        + s.requeued_victims.get();
    assert!(
        settled <= s.unmapped_pages.get(),
        "[{label} seed={seed}] settled {settled} > unmapped {}",
        s.unmapped_pages.get()
    );

    // (c) No page lost: resident or reachable remotely, never neither.
    for i in 0..vma.pages {
        let vpn = vma.start_vpn + i;
        let pte = engine.page_table().get(vpn);
        assert!(
            pte.is_present() || pte.is_remote(),
            "[{label} seed={seed}] page lost: vpn {vpn} neither resident \
             nor remote"
        );
    }

    // Frame conservation still holds under injected failures.
    let resident = engine.accounting().resident_pages();
    let free = engine.allocator().free_frames();
    assert!(
        resident + free <= 256,
        "[{label} seed={seed}] resident {resident} + free {free} \
         over-commits the local quota"
    );

    ChaosOutcome {
        transfer_retries: s.transfer_retries.get(),
        requeued_victims: s.requeued_victims.get(),
        failed_accesses,
    }
}

type SystemCtor = (&'static str, fn() -> SystemConfig);

struct SweepTotals {
    retries: u64,
    requeued: u64,
    failed: u64,
    cells: usize,
}

fn sweep(systems: &[SystemCtor]) -> SweepTotals {
    let mut retries = 0u64;
    let mut requeued = 0u64;
    let mut failed = 0u64;
    let mut cells = 0usize;
    for (name, system) in systems {
        for fault_seed in 0..4u64 {
            let plans: [(&str, FaultPlan); 4] = [
                ("err-5%", errors(0.05, 0xC0FFEE ^ fault_seed)),
                ("err-50%", errors(0.5, 0xBADD ^ fault_seed)),
                ("brownout", brownouts(100_000 + 40_000 * fault_seed, 0xD1 ^ fault_seed)),
                ("crash", crashes(0x5EED ^ fault_seed)),
            ];
            for (plan_name, plan) in plans {
                for seed in [11u64, 29] {
                    let label = format!("{name}/{plan_name}/fseed={fault_seed}");
                    let out = chaos_run(system(), plan.clone(), &label, seed);
                    retries += out.transfer_retries;
                    requeued += out.requeued_victims;
                    failed += out.failed_accesses;
                    cells += 1;
                }
            }
        }
    }
    SweepTotals {
        retries,
        requeued,
        failed,
        cells,
    }
}

/// The main sweep: 2 systems × 4 plan families × 4 fault seeds × 2 engine
/// seeds = 64 cells, each upholding every invariant.
#[test]
fn chaos_sweep_preserves_invariants() {
    let systems: [SystemCtor; 2] = [
        ("mage_lib", SystemConfig::mage_lib),
        ("hermit", SystemConfig::hermit),
    ];
    let t = sweep(&systems);
    assert!(t.cells >= 64, "sweep shrank to {} cells", t.cells);
    // The sweep must actually exercise the machinery it protects: the
    // high-error cells are tuned so retries fire and some exhaust.
    assert!(
        t.retries > 0,
        "no transfer was ever retried across {} cells",
        t.cells
    );
    assert!(
        t.requeued > 0,
        "no eviction victim was ever requeued across {} cells",
        t.cells
    );
    assert!(
        t.failed > 0,
        "no access ever exhausted its retry budget across {} cells",
        t.cells
    );
}

/// A crashed remote node must never wedge the engine: accesses during
/// the outage fail with typed errors and succeed once the node recovers.
#[test]
fn crash_windows_fail_typed_and_recover() {
    let out = chaos_run(SystemConfig::mage_lib(), crashes(0xD05E), "crash-solo", 7);
    assert!(out.failed_accesses > 0, "crash windows never surfaced a failure");
}

/// Retry spans are emitted only when the retry machinery actually runs:
/// a clean link produces a trace with no `retry`-category events, while
/// an active error-injecting [`FaultPlan`] produces them. Guards against
/// the clean fast path growing tracing overhead (or phantom spans).
#[test]
fn retry_spans_appear_only_under_an_active_fault_plan() {
    let traced_run = |plan: FaultPlan, seed: u64| {
        let retry = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let system = SystemConfig::mage_lib().with_faults(plan).with_retry(retry);
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(CORES),
            app_threads: THREADS,
            local_pages: 256,
            remote_pages: 4_096,
            tlb_entries: 64,
            seed,
        };
        let engine = FarMemory::launch(sim.handle(), system, params);
        let tracer = Tracer::new(sim.handle());
        engine.attach_tracer(std::rc::Rc::clone(&tracer));
        let vma = engine.mmap(VMA_PAGES);
        engine.populate(&vma);
        let e = Rc::clone(&engine);
        let v = vma.clone();
        sim.block_on(async move {
            for round in 0..2 {
                for i in 0..v.pages {
                    let core = CoreId((i % THREADS as u64) as u32);
                    e.access(core, v.start_vpn + i, round == 0).await;
                }
            }
        });
        engine.shutdown();
        tracer.to_chrome_json()
    };

    let clean = traced_run(
        FaultPlan {
            seed: 0xABCD,
            ..FaultPlan::none()
        },
        3,
    );
    assert!(
        !clean.contains("\"cat\":\"retry\""),
        "clean link must not emit retry spans"
    );

    let faulty = traced_run(errors(0.5, 0xBADD), 3);
    assert!(
        faulty.contains("\"cat\":\"retry\""),
        "50% error injection never reached the retry path"
    );
}

// ---------------------------------------------------------------------
// Kill-a-node-mid-sweep battery: with page replication on, a memory-node
// crash costs failover latency, never data. Every cell asserts
//
//   (a) zero lost pages — every VMA page resident or remote;
//   (b) zero aborted faults and zero failed accesses — reads fail over
//       to the surviving replica instead of exhausting retries;
//   (c) every settled remote page keeps ≥ 1 synced/rebuilding replica;
//   (d) the replica state machine was never violated.
//
// The replication-off sweeps above are untouched: unreplicated configs
// take byte-identical code paths (pinned by tests/seams.rs goldens).
// ---------------------------------------------------------------------

struct ReplicatedOutcome {
    failover_reads: u64,
    rereplicated_pages: u64,
    failed_accesses: u64,
}

/// One node-kill cell: two memory nodes with provably disjoint staggered
/// crash windows, replication on, two access rounds over the WSS.
fn replicated_chaos_run(
    period_ns: u64,
    duration_ns: u64,
    plan_seed: u64,
    seed: u64,
    label: &str,
) -> ReplicatedOutcome {
    let nodes = 2usize;
    let node_plans: Vec<FaultPlan> = (0..nodes)
        .map(|i| FaultPlan::staggered_node_crash(plan_seed, i, nodes, period_ns, duration_ns))
        .collect();
    let retry = RetryPolicy {
        max_retries: 2,
        ..RetryPolicy::default()
    };
    let system = SystemConfig::mage_lib()
        .with_node_faults(node_plans)
        .with_replication(ReplicationConfig {
            nodes,
            repair_poll_ns: 10_000,
        })
        .with_retry(retry);
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(CORES),
        app_threads: THREADS,
        local_pages: 256,
        remote_pages: 4_096,
        tlb_entries: 64,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(VMA_PAGES);
    engine.populate(&vma);

    let e = Rc::clone(&engine);
    let v = vma.clone();
    let failed_accesses = sim.block_on(async move {
        let mut failed = 0u64;
        for round in 0..2 {
            for i in 0..v.pages {
                let core = CoreId((i % THREADS as u64) as u32);
                let access = e.access(core, v.start_vpn + i, round == 0).await;
                if matches!(access, Access::Failed { .. }) {
                    failed += 1;
                }
            }
        }
        failed
    });
    engine.shutdown();

    // (a) Zero lost pages.
    for i in 0..vma.pages {
        let vpn = vma.start_vpn + i;
        let pte = engine.page_table().get(vpn);
        assert!(
            pte.is_present() || pte.is_remote(),
            "[{label} seed={seed}] page lost: vpn {vpn} neither resident nor remote"
        );
    }

    // (b) Node crashes cost failover latency, never aborted faults.
    let s = engine.stats();
    assert_eq!(
        s.aborted_faults.get(),
        0,
        "[{label} seed={seed}] a fault-in aborted despite replication"
    );
    assert_eq!(
        failed_accesses, 0,
        "[{label} seed={seed}] an access failed despite replication"
    );

    // (c) Every settled remote page keeps a live replica.
    for i in 0..vma.pages {
        let vpn = vma.start_vpn + i;
        let pte = engine.page_table().get(vpn);
        if pte.is_remote() && !pte.locked() {
            let states = engine
                .backend()
                .replica_states(pte.payload())
                .unwrap_or_else(|| {
                    panic!("[{label} seed={seed}] untracked remote slot {}", pte.payload())
                });
            assert!(
                states
                    .iter()
                    .any(|st| matches!(st, ReplicaState::Synced | ReplicaState::Rebuilding)),
                "[{label} seed={seed}] vpn {vpn} has no live replica: {states:?}"
            );
        }
    }

    // (d) The replica state machine was obeyed throughout.
    let rstats = engine
        .backend()
        .replication_stats()
        .expect("replicated backend exposes repair stats");
    assert_eq!(
        rstats.illegal_transitions.get(),
        0,
        "[{label} seed={seed}] replica state machine violated"
    );

    ReplicatedOutcome {
        failover_reads: s.failover_reads.get(),
        rereplicated_pages: rstats.rereplicated_pages.get(),
        failed_accesses,
    }
}

/// The node-kill sweep: 4 outage geometries × 4 plan seeds × 4 engine
/// seeds = 64 cells. Replication must hold every cell to zero lost pages
/// and zero aborted faults, and the sweep as a whole must actually
/// exercise failover and re-replication.
#[test]
fn node_kill_sweep_loses_nothing_with_replication() {
    let geometries: [(&str, u64, u64); 4] = [
        ("short-frequent", 400_000, 40_000),
        ("long-rare", 1_000_000, 120_000),
        ("mid", 600_000, 60_000),
        ("tight", 300_000, 30_000),
    ];
    let mut cells = 0usize;
    let mut failovers = 0u64;
    let mut repairs = 0u64;
    for (geo, period, duration) in geometries {
        for plan_seed in 0..4u64 {
            for seed in [5u64, 13, 23, 31] {
                let label = format!("replicated/{geo}/pseed={plan_seed}");
                let out =
                    replicated_chaos_run(period, duration, 0x5EED ^ plan_seed, seed, &label);
                failovers += out.failover_reads;
                repairs += out.rereplicated_pages;
                assert_eq!(out.failed_accesses, 0);
                cells += 1;
            }
        }
    }
    assert!(cells >= 64, "sweep shrank to {cells} cells");
    assert!(
        failovers > 0,
        "no read ever failed over across {cells} cells"
    );
    assert!(
        repairs > 0,
        "no page was ever re-replicated across {cells} cells"
    );
}

/// Zero-amplitude plans take the clean fast path: no retries, no
/// failures, no requeues, regardless of the plan seed.
#[test]
fn inactive_plan_is_noise_free() {
    let out = chaos_run(
        SystemConfig::mage_lib(),
        FaultPlan {
            seed: 0xABCD,
            ..FaultPlan::none()
        },
        "inactive",
        3,
    );
    assert_eq!(out.transfer_retries, 0, "clean link must not retry");
    assert_eq!(out.requeued_victims, 0, "clean link must not requeue");
    assert_eq!(out.failed_accesses, 0, "clean link must not fail accesses");
}
