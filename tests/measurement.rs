//! Measurement-methodology regression tests: warmup must not pollute the
//! reported window, and open-loop runs must not censor their tails.
//!
//! The bug class under test: `RunReport` used to be computed from
//! *cumulative* counters after a destructive `EngineStats::reset()`
//! (since removed) at the warmup rendezvous. The reset only covered the
//! engine's own
//! counters — NIC byte counts and IPI/shootdown histograms kept their
//! warmup samples and were then divided by the post-warmup runtime,
//! inflating `read_gbps`/`write_gbps` and skewing `shootdown_mean_ns`
//! for every warmed-up run. Reports now come from snapshot-delta
//! [`MetricsWindow`]s, so a warmed-up run and a warmup-free run of the
//! same steady-state workload must agree.

use mage_far_memory::prelude::*;

/// Relative difference, tolerant of tiny denominators.
fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

/// A workload that is near eviction steady state from the first
/// operation: uniform random access with a small resident set, so the
/// miss rate is stationary and warmup changes nothing but the window.
/// The one real cold-start transient — `populate` leaves its resident
/// pages dirty (no remote copy yet), so the cold run writes back ~512
/// extra pages — is amortized by a window two orders of magnitude
/// larger.
fn steady(warmup_ops: u64) -> RunConfig {
    let mut cfg =
        RunConfig::new(SystemConfig::mage_lib(), WorkloadKind::RandomGraph, 4, 8_192, 0.0625);
    cfg.ops_per_thread = 32_000;
    cfg.warmup_ops = warmup_ops;
    cfg.topo = Topology::single_socket(10);
    cfg
}

/// The headline regression: a warmed-up run of a steady-state workload
/// must report the same bandwidth and shootdown figures as a warmup-free
/// run. Under the old cumulative-counter reporting the warmed-up run
/// inflated `read_gbps` by roughly `1 + warmup/measured` (warmup bytes
/// divided by post-warmup runtime).
#[test]
fn warmup_does_not_pollute_the_measurement_window() {
    let cold = run_batch(&steady(0));
    let warm = run_batch(&steady(3_000));

    assert!(cold.read_gbps > 0.0 && warm.read_gbps > 0.0);
    assert!(
        rel_diff(cold.read_gbps, warm.read_gbps) < 0.05,
        "read_gbps diverges: cold {:.4} vs warm {:.4}",
        cold.read_gbps,
        warm.read_gbps
    );
    assert!(
        rel_diff(cold.write_gbps, warm.write_gbps) < 0.05,
        "write_gbps diverges: cold {:.4} vs warm {:.4}",
        cold.write_gbps,
        warm.write_gbps
    );
    assert!(
        rel_diff(cold.shootdown_mean_ns, warm.shootdown_mean_ns) < 0.05,
        "shootdown_mean_ns diverges: cold {:.1} vs warm {:.1}",
        cold.shootdown_mean_ns,
        warm.shootdown_mean_ns
    );
}

/// The windowed fault count must cover the measured ops only: a warmed-up
/// run reports the same per-op fault rate as a cold one, not the warmup's
/// faults on top.
#[test]
fn windowed_fault_rate_matches_cold_run() {
    let cold = run_batch(&steady(0));
    let warm = run_batch(&steady(3_000));
    let cold_rate = cold.major_faults as f64 / cold.total_ops as f64;
    let warm_rate = warm.major_faults as f64 / warm.total_ops as f64;
    assert!(
        rel_diff(cold_rate, warm_rate) < 0.05,
        "fault rate diverges: cold {cold_rate:.4} vs warm {warm_rate:.4}"
    );
    // The window's per-thread fault counts must sum to the windowed total.
    assert_eq!(
        warm.faults_per_thread.iter().sum::<u64>(),
        warm.major_faults,
        "per-thread fault counts disagree with the windowed total"
    );
}

/// With sampling enabled the timeline must account for every measured op,
/// including the final partial bucket that used to be dropped when the
/// last thread finished mid-interval — also when a warmup phase precedes
/// the window.
#[test]
fn timeline_conserves_ops_with_warmup() {
    let mut cfg = steady(1_000);
    cfg.sample_interval_ns = Some(200_000);
    let report = run_batch(&cfg);
    let total: u64 = report.timeline.iter().map(|&(_, o)| o).sum();
    assert_eq!(
        total, report.total_ops,
        "sum(timeline buckets) must equal total measured ops"
    );
}

/// At a trivially sustainable offered load the bounded drain completes
/// every request: nothing is censored, and the issued/completed ledger
/// balances.
#[test]
fn open_loop_tail_is_not_censored_at_low_load() {
    let r = run_open_loop_faults(
        SystemConfig::mage_lib(),
        8,
        200_000,
        0.4,
        0.2,
        20_000_000,
        1,
    );
    assert!(r.issued_requests > 0, "generator issued nothing");
    assert_eq!(
        r.censored_requests, 0,
        "low-load run censored {} of {} requests",
        r.censored_requests, r.issued_requests
    );
    assert_eq!(r.completed_requests, r.issued_requests);

    let raw = run_raw_rdma(2.0, 20_000_000, 3);
    assert_eq!(
        raw.censored_requests, 0,
        "low-load raw-RDMA run censored {} of {} requests",
        raw.censored_requests, raw.issued_requests
    );
}
