//! Virtual-time tracing: structural and determinism properties of the
//! span capture and its Chrome `trace_event` export.
//!
//! - fault spans on a core's track nest properly: every `fp*` phase span
//!   lies inside a `major` span on the same track;
//! - the export is valid JSON and bit-identical across same-seed runs
//!   (the tracer reads the same virtual clock the engine runs on, so a
//!   trace is as deterministic as the simulation itself);
//! - attaching a tracer observes the run without perturbing it.

use std::rc::Rc;

use mage_far_memory::prelude::*;

/// An offloaded run that faults, evicts and shoots down TLBs — every
/// span source fires.
fn traced_cfg() -> RunConfig {
    let mut cfg = RunConfig::new(SystemConfig::mage_lib(), WorkloadKind::RandomGraph, 4, 8_192, 0.5);
    cfg.ops_per_thread = 2_000;
    cfg.topo = Topology::single_socket(10);
    cfg.capture_trace = true;
    cfg
}

/// Engine-level smoke test: drive faults with a tracer attached and
/// check the captured spans nest. On a core's track, every fault-phase
/// span (`fp1.*`/`fp2.*`/`fp3.*`) must be contained in some `major`
/// span; async hardware intervals live on their own tracks.
#[test]
fn fault_phase_spans_nest_inside_major_spans() {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 2,
        local_pages: 512,
        remote_pages: 8_192,
        tlb_entries: 256,
        seed: 9,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let tracer = Tracer::new(sim.handle());
    engine.attach_tracer(Rc::clone(&tracer));
    let vma = engine.mmap(2_048);
    engine.populate_all_remote(&vma);

    let e = Rc::clone(&engine);
    sim.block_on(async move {
        for i in 0..2_048 {
            e.access(CoreId((i % 2) as u32), vma.start_vpn + i, i % 3 == 0).await;
        }
    });
    engine.shutdown();

    let events = tracer.events();
    assert!(!events.is_empty(), "traced faulting run captured no events");

    let majors: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.cat == "fault" && e.name == "major")
        .collect();
    let phases: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.cat == "fault" && e.name.starts_with("fp"))
        .collect();
    assert!(!majors.is_empty(), "no major-fault spans captured");
    assert!(!phases.is_empty(), "no fault-phase spans captured");
    for p in &phases {
        let contained = majors.iter().any(|m| {
            m.track == p.track
                && p.start_ns >= m.start_ns
                && p.start_ns + p.dur_ns <= m.start_ns + m.dur_ns
        });
        assert!(
            contained,
            "phase span {}@{} (track {}) lies outside every major span",
            p.name, p.start_ns, p.track
        );
    }

    // Eviction pressure fired the async hardware tracks too.
    use mage_far_memory::sim::trace::{TRACK_NIC, TRACK_TLB};
    assert!(events.iter().any(|e| e.track == TRACK_NIC));
    assert!(events.iter().any(|e| e.track == TRACK_TLB));
}

/// Same seed ⇒ bit-identical trace JSON; different seed ⇒ different
/// trace. The export must also parse as JSON.
#[test]
fn same_seed_traces_are_bit_identical() {
    let a = run_batch(&traced_cfg());
    let b = run_batch(&traced_cfg());
    let ja = a.trace_json.expect("capture_trace produced no JSON");
    let jb = b.trace_json.expect("capture_trace produced no JSON");
    assert!(ja.contains("\"traceEvents\""));
    validate_json(&ja).expect("trace export must be valid JSON");
    assert_eq!(ja, jb, "same-seed traces must be bit-identical");

    let mut cfg = traced_cfg();
    cfg.seed = 43;
    let c = run_batch(&cfg);
    assert_ne!(
        ja,
        c.trace_json.expect("capture_trace produced no JSON"),
        "different seeds must produce different traces"
    );
}

/// Attaching a tracer is pure observation: every reported statistic is
/// bit-identical with and without capture.
#[test]
fn tracing_does_not_perturb_the_run() {
    let traced = run_batch(&traced_cfg());
    let mut cfg = traced_cfg();
    cfg.capture_trace = false;
    let plain = run_batch(&cfg);
    assert!(plain.trace_json.is_none());
    assert_eq!(traced.runtime_ns, plain.runtime_ns);
    assert_eq!(traced.total_ops, plain.total_ops);
    assert_eq!(traced.major_faults, plain.major_faults);
    assert_eq!(traced.fault_mean_ns.to_bits(), plain.fault_mean_ns.to_bits());
    assert_eq!(traced.read_gbps.to_bits(), plain.read_gbps.to_bits());
    assert_eq!(traced.evicted_pages, plain.evicted_pages);
}
