//! Shape tests for the paper's headline claims, at reduced scale.
//!
//! These assert the *qualitative* results of the evaluation — who wins,
//! in which regime, and in which direction each technique moves the
//! numbers — so a regression in any mechanism (pipelining, partitioning,
//! allocator layering, sync-eviction avoidance) fails loudly.

use mage_far_memory::accounting::AccountingKind;
use mage_far_memory::palloc::LocalAllocatorKind;
use mage_far_memory::prelude::*;

fn batch(system: SystemConfig, kind: WorkloadKind, threads: usize, local: f64) -> RunReport {
    let mut cfg = RunConfig::new(system, kind, threads, 32_768, local);
    cfg.ops_per_thread = 4_000;
    run_batch(&cfg)
}

/// §6.2 / Fig. 9: at 48 threads and substantial offload, MAGE variants
/// beat both baselines on random-access workloads.
#[test]
fn mage_wins_throughput_at_scale() {
    let mage = batch(SystemConfig::mage_lib(), WorkloadKind::RandomGraph, 48, 0.5);
    let lnx = batch(SystemConfig::mage_lnx(), WorkloadKind::RandomGraph, 48, 0.5);
    let dilos = batch(SystemConfig::dilos(), WorkloadKind::RandomGraph, 48, 0.5);
    let hermit = batch(SystemConfig::hermit(), WorkloadKind::RandomGraph, 48, 0.5);
    assert!(
        mage.mops() > 1.2 * dilos.mops(),
        "MageLib {:.2} vs DiLOS {:.2}",
        mage.mops(),
        dilos.mops()
    );
    assert!(
        mage.mops() > 1.2 * hermit.mops(),
        "MageLib {:.2} vs Hermit {:.2}",
        mage.mops(),
        hermit.mops()
    );
    assert!(
        lnx.mops() > dilos.mops(),
        "MageLnx {:.2} vs DiLOS {:.2}",
        lnx.mops(),
        dilos.mops()
    );
}

/// Fig. 18b: at 4 threads the systems converge — no MAGE regression, and
/// no large MAGE advantage either (demand is below everyone's capacity).
#[test]
fn low_thread_count_is_a_wash() {
    let mage = batch(SystemConfig::mage_lib(), WorkloadKind::RandomGraph, 4, 0.7);
    let dilos = batch(SystemConfig::dilos(), WorkloadKind::RandomGraph, 4, 0.7);
    let ratio = mage.mops() / dilos.mops();
    assert!(
        (0.85..1.6).contains(&ratio),
        "4-thread ratio {ratio:.2} out of the expected near-parity band"
    );
}

/// §3.2 / Fig. 5: the eviction path, not the fault path, is what
/// collapses the baselines: enabling eviction costs them throughput.
#[test]
fn eviction_is_the_bottleneck_for_baselines() {
    let fault_only = {
        let mut cfg = RunConfig::new(
            SystemConfig::hermit(),
            WorkloadKind::SeqFault,
            24,
            60_000,
            1.0,
        );
        cfg.all_remote = true;
        cfg.ops_per_thread = 2_500;
        run_batch(&cfg)
    };
    let with_evict = {
        let mut cfg = RunConfig::new(
            SystemConfig::hermit(),
            WorkloadKind::SeqFault,
            24,
            60_000,
            0.5,
        );
        cfg.all_remote = true;
        cfg.ops_per_thread = 2_500;
        run_batch(&cfg)
    };
    assert!(
        with_evict.fault_mops() < 0.85 * fault_only.fault_mops(),
        "eviction cost invisible: {:.2} vs {:.2}",
        with_evict.fault_mops(),
        fault_only.fault_mops()
    );
}

/// §3.3.1 / Fig. 7: shootdown latency grows with thread count, with a
/// cross-socket penalty once threads span sockets.
#[test]
fn shootdown_latency_grows_with_threads() {
    let mut shots = Vec::new();
    for threads in [4usize, 48] {
        let mut cfg = RunConfig::new(
            SystemConfig::dilos(),
            WorkloadKind::SeqFault,
            threads,
            60_000,
            0.5,
        );
        cfg.all_remote = true;
        cfg.ops_per_thread = (60_000 / threads) as u64;
        let r = run_batch(&cfg);
        shots.push(r.shootdown_mean_ns);
    }
    assert!(
        shots[1] > 2.0 * shots[0],
        "48T shootdown {:.0}ns not >> 4T {:.0}ns",
        shots[1],
        shots[0]
    );
}

/// Fig. 10: prefetching helps MAGE (fast EP absorbs the extra pressure)
/// but does not help Hermit.
#[test]
fn prefetch_only_pays_off_on_mage() {
    let mage_off = {
        let mut s = SystemConfig::mage_lib();
        s.prefetch = PrefetchPolicy::None;
        batch(s, WorkloadKind::SeqScan, 48, 0.9)
    };
    let mage_on = batch(
        SystemConfig::mage_lib().with_prefetch(),
        WorkloadKind::SeqScan,
        48,
        0.9,
    );
    assert!(
        mage_on.mops() > mage_off.mops(),
        "prefetch must help MAGE: {:.2} vs {:.2}",
        mage_on.mops(),
        mage_off.mops()
    );
    assert!(mage_on.prefetches > 0);

    let hermit_off = {
        let mut s = SystemConfig::hermit();
        s.prefetch = PrefetchPolicy::None;
        batch(s, WorkloadKind::SeqScan, 48, 0.9)
    };
    let hermit_on = batch(SystemConfig::hermit(), WorkloadKind::SeqScan, 48, 0.9);
    assert!(
        hermit_on.mops() < 1.15 * hermit_off.mops(),
        "prefetch must not substantially help Hermit: {:.2} vs {:.2}",
        hermit_on.mops(),
        hermit_off.mops()
    );
}

/// §6.3 / Fig. 13: MAGE's tail latency beats the baselines under memory
/// pressure because requests never block behind synchronous eviction.
#[test]
fn memcached_tail_ordering() {
    let p99 = |system: SystemConfig| {
        let mut cfg = MemcachedConfig::paper(system, 40_000);
        cfg.workers = 12;
        cfg.local_ratio = 0.4;
        cfg.load_mops = 0.6;
        cfg.duration_ns = 25_000_000;
        run_memcached(&cfg).p99_ns
    };
    let mage = p99(SystemConfig::mage_lib());
    let hermit = p99(SystemConfig::hermit());
    assert!(mage < hermit, "MAGE p99 {mage} not below Hermit {hermit}");
}

/// Fig. 17: each MAGE technique moves throughput in the right direction
/// at 48 threads under pressure.
#[test]
fn ablation_steps_improve_monotonically_enough() {
    let baseline = batch(SystemConfig::dilos(), WorkloadKind::RandomGraph, 48, 0.6);

    let mut pipelined_cfg = SystemConfig::dilos();
    pipelined_cfg.sync_eviction = false;
    pipelined_cfg.pipelined_eviction = true;
    pipelined_cfg.eviction_batch = 256;
    let pipelined = batch(pipelined_cfg.clone(), WorkloadKind::RandomGraph, 48, 0.6);

    let mut partitioned_cfg = pipelined_cfg.clone();
    partitioned_cfg.accounting = AccountingKind::PartitionedLru { partitions: 8 };
    let partitioned = batch(partitioned_cfg.clone(), WorkloadKind::RandomGraph, 48, 0.6);

    let mut full_cfg = partitioned_cfg;
    full_cfg.local_alloc = LocalAllocatorKind::MultiLayer;
    let full = batch(full_cfg, WorkloadKind::RandomGraph, 48, 0.6);

    assert!(
        full.mops() > baseline.mops(),
        "all techniques combined must beat the baseline: {:.2} vs {:.2}",
        full.mops(),
        baseline.mops()
    );
    assert!(
        full.mops() >= partitioned.mops() * 0.95,
        "multilayer step must not regress: {:.2} vs {:.2}",
        full.mops(),
        partitioned.mops()
    );
    assert!(
        partitioned.mops() > pipelined.mops(),
        "LRU partitioning must help under contention: {:.2} vs {:.2}",
        partitioned.mops(),
        pipelined.mops()
    );
}

/// Fig. 18a: with pipelining, larger batches help up to a point; the
/// sequential evictor prefers small batches.
#[test]
fn batch_size_sweet_spots() {
    let run_with = |pipelined: bool, batch_size: usize| {
        let mut s = SystemConfig::mage_lib().with_eviction_batch(batch_size);
        s.pipelined_eviction = pipelined;
        let mut cfg = RunConfig::new(s, WorkloadKind::RandomGraph, 32, 32_768, 0.5);
        cfg.ops_per_thread = 3_000;
        cfg.warmup_ops = 1_000;
        run_batch(&cfg).mops()
    };
    let p256 = run_with(true, 256);
    let p32 = run_with(true, 32);
    assert!(
        p256 > p32,
        "pipelined 256 {p256:.2} must beat pipelined 32 {p32:.2}"
    );
}

/// Table 2: with 100% local memory the bare-metal baseline (Hermit) is
/// fastest — virtualization costs the MAGE variants a few percent.
#[test]
fn all_local_virtualization_cost() {
    let hermit = batch(SystemConfig::hermit(), WorkloadKind::XsBench, 16, 1.0);
    let mage = batch(SystemConfig::mage_lib(), WorkloadKind::XsBench, 16, 1.0);
    assert_eq!(hermit.major_faults, 0);
    assert_eq!(mage.major_faults, 0);
    assert!(
        hermit.mops() > mage.mops(),
        "bare metal must win all-local: hermit {:.2} vs mage {:.2}",
        hermit.mops(),
        mage.mops()
    );
    let penalty = 1.0 - mage.mops() / hermit.mops();
    assert!(
        penalty < 0.15,
        "virtualization penalty {penalty:.2} too large"
    );
}
