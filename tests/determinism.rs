//! End-to-end determinism: a scaled-down fig05-style sweep run twice
//! with the same seed must produce bit-identical statistics, and a
//! different seed must produce different ones. This is the property the
//! whole evaluation rests on (and the one simlint + the deterministic
//! executor exist to protect).

use mage::{EvictionPolicyKind, PrefetchPolicy, ReplicationConfig, RetryPolicy, SystemConfig};
use mage_fabric::FaultPlan;
use mage_workloads::runner::{run_batch, RunConfig, RunReport};
use mage_workloads::WorkloadKind;

/// Digest of every statistic a report carries, down to the exact f64
/// bits. Floats go through `to_bits()` so "bit-identical" means exactly
/// that, not "equal within epsilon".
fn digest(r: &RunReport) -> Vec<u64> {
    let mut d = vec![
        r.runtime_ns,
        r.total_ops,
        r.major_faults,
        r.fault_mean_ns.to_bits(),
        r.fault_p50_ns,
        r.fault_p99_ns,
        r.sync_evictions,
        r.evicted_pages,
        r.shootdown_mean_ns.to_bits(),
        r.ipi_mean_ns.to_bits(),
        r.read_gbps.to_bits(),
        r.write_gbps.to_bits(),
        r.prefetches,
        r.evict_cancels,
        r.free_wait_count,
        r.free_wait_mean_ns.to_bits(),
        r.transfer_retries,
        r.transfer_failures,
        r.aborted_faults,
        r.requeued_victims,
        r.re_faults,
        r.ghost_hits,
        r.failover_reads,
        r.rereplicated_pages,
        r.degraded_pages,
        r.executor_polls,
    ];
    d.extend(r.faults_per_thread.iter().copied());
    d.extend(r.timeline.iter().flat_map(|&(t, v)| [t, v]));
    d
}

/// Scaled-down fig05 sweep: three systems × two thread counts, with and
/// without eviction pressure, all folded into one digest.
fn sweep(seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for system in [
        SystemConfig::hermit(),
        SystemConfig::dilos(),
        SystemConfig::mage_lib(),
    ] {
        for threads in [2usize, 4] {
            for local_ratio in [1.0f64, 0.5] {
                let mut s = system.clone();
                s.prefetch = PrefetchPolicy::None;
                let wss = 2048u64;
                let mut cfg =
                    RunConfig::new(s, WorkloadKind::SeqFault, threads, wss, local_ratio);
                cfg.all_remote = true;
                cfg.ops_per_thread = wss / threads as u64;
                cfg.seed = seed;
                out.extend(digest(&run_batch(&cfg)));
            }
        }
    }
    // SeqFault is a deterministic access stream regardless of seed; add
    // one zipfian GUPS run so the sweep digest is also seed-sensitive.
    let mut cfg = RunConfig::new(SystemConfig::mage_lib(), WorkloadKind::Gups, 2, 2048, 0.5);
    cfg.ops_per_thread = 1000;
    cfg.seed = seed;
    out.extend(digest(&run_batch(&cfg)));
    out
}

#[test]
fn same_seed_is_bit_identical() {
    let a = sweep(0xDEAD_BEEF);
    let b = sweep(0xDEAD_BEEF);
    assert_eq!(a, b, "same seed must reproduce every statistic bit-for-bit");
}

#[test]
fn different_seeds_differ() {
    // A randomized workload's statistics must actually depend on the
    // seed; identical digests would mean the seed is ignored.
    let a = sweep(1);
    let b = sweep(2);
    assert_ne!(a, b, "different seeds must perturb the statistics");
}

/// One faulty-link sweep: two systems under a degraded link plus a
/// crash-window plan, folded into a digest. The fault plan's own seed is
/// a parameter so both halves of the determinism contract can be pinned.
fn faulty_sweep(fault_seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for system in [SystemConfig::mage_lib(), SystemConfig::hermit()] {
        for plan in [
            FaultPlan::degraded_link(fault_seed),
            FaultPlan {
                seed: fault_seed,
                error_rate: 0.2,
                crash_period_ns: 500_000,
                crash_duration_ns: 50_000,
                crash_rate: 0.5,
                ..FaultPlan::none()
            },
        ] {
            let mut s = system.clone().with_faults(plan).with_retry(RetryPolicy {
                max_retries: 3,
                ..RetryPolicy::default()
            });
            s.prefetch = PrefetchPolicy::None;
            let mut cfg = RunConfig::new(s, WorkloadKind::Gups, 2, 2048, 0.5);
            cfg.ops_per_thread = 500;
            cfg.seed = 13;
            out.extend(digest(&run_batch(&cfg)));
        }
    }
    out
}

#[test]
fn same_fault_plan_is_bit_identical() {
    // Injected errors, spikes, brownouts and crash windows must all be
    // functions of the fault seed alone: the whole chaos methodology
    // (replay a failing seed) rests on this.
    let a = faulty_sweep(0xFA417);
    let b = faulty_sweep(0xFA417);
    assert_eq!(
        a, b,
        "same fault seed must reproduce every statistic bit-for-bit"
    );
}

#[test]
fn different_fault_seeds_diverge() {
    // The injector must actually consume its seed: identical digests
    // under different fault seeds would mean faults are not injected or
    // not seeded.
    let a = faulty_sweep(0xFA417);
    let b = faulty_sweep(0xFA418);
    assert_ne!(a, b, "different fault seeds must perturb the statistics");
}

/// One replicated sweep: MAGE-Lib on a two-node [`ReplicatedBackend`]
/// under staggered per-node crash plans, two outage geometries, folded
/// into a digest (which now carries the failover / re-replication
/// counters). Returns the digest plus the total failovers and repairs so
/// the tests can also pin that the counters were genuinely exercised.
fn replicated_sweep(fault_seed: u64) -> (Vec<u64>, u64, u64) {
    let mut out = Vec::new();
    let (mut failovers, mut repairs) = (0u64, 0u64);
    let nodes = 2usize;
    for (period, duration) in [(400_000u64, 40_000u64), (600_000, 60_000)] {
        let plans = (0..nodes)
            .map(|i| {
                // Aligned staggered windows are a pure function of the
                // geometry (rate 1.0 never consults the seed), so the
                // sweep folds the fault seed into the phase: both nodes
                // shift together, outages stay disjoint, and a different
                // seed genuinely moves every outage window.
                let mut p =
                    FaultPlan::staggered_node_crash(fault_seed, i, nodes, period, duration);
                p.crash_phase_ns = p.crash_phase_ns.wrapping_add((fault_seed % 97) * 1_000);
                p
            })
            .collect();
        let mut s = SystemConfig::mage_lib()
            .with_node_faults(plans)
            .with_replication(ReplicationConfig {
                nodes,
                repair_poll_ns: 10_000,
            })
            .with_retry(RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            });
        s.prefetch = PrefetchPolicy::None;
        let mut cfg = RunConfig::new(s, WorkloadKind::Gups, 2, 2048, 0.5);
        cfg.ops_per_thread = 500;
        cfg.seed = 13;
        let report = run_batch(&cfg);
        failovers += report.failover_reads;
        repairs += report.rereplicated_pages;
        out.extend(digest(&report));
    }
    (out, failovers, repairs)
}

#[test]
fn replicated_sweep_same_fault_seed_is_bit_identical() {
    // Node crashes, monitor-lag failovers and background repairs must all
    // be functions of the fault seed alone — including the new counters,
    // which ride in the digest.
    let (a, failovers, repairs) = replicated_sweep(0xFA417);
    let (b, _, _) = replicated_sweep(0xFA417);
    assert_eq!(
        a, b,
        "same fault seed must reproduce every replicated statistic bit-for-bit"
    );
    assert!(
        repairs > 0,
        "the sweep must exercise background re-replication"
    );
    assert!(
        failovers + repairs > 0,
        "the sweep must exercise the replication machinery"
    );
}

#[test]
fn replicated_sweep_different_fault_seeds_diverge() {
    // The per-node crash plans must actually consume their seed: the
    // outage windows (and hence failovers and repairs) move with it.
    let (a, _, _) = replicated_sweep(0xFA417);
    let (b, _, _) = replicated_sweep(0xFA418);
    assert_ne!(
        a, b,
        "different fault seeds must perturb the replicated statistics"
    );
}

#[test]
fn every_eviction_policy_is_bit_deterministic() {
    // The policy zoo must uphold the same-seed contract: per policy,
    // two runs agree bit-for-bit, and policies genuinely diverge from
    // one another on a workload with eviction pressure.
    let zoo = [
        EvictionPolicyKind::SecondChance,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::AgingClock { hot_rounds: 3 },
        EvictionPolicyKind::S3Fifo,
        EvictionPolicyKind::ApproxLru,
    ];
    let run = |kind: EvictionPolicyKind, seed: u64| {
        let system = SystemConfig::mage_lib().with_eviction_policy(kind);
        let mut cfg = RunConfig::new(system, WorkloadKind::Gups, 4, 4096, 0.5);
        cfg.ops_per_thread = 1500;
        cfg.seed = seed;
        digest(&run_batch(&cfg))
    };
    let mut digests = Vec::new();
    for kind in zoo {
        let a = run(kind, 11);
        let b = run(kind, 11);
        assert_eq!(a, b, "{}: same seed must be bit-identical", kind.name());
        assert_ne!(
            a,
            run(kind, 12),
            "{}: different seeds must perturb the statistics",
            kind.name()
        );
        digests.push((kind.name(), a));
    }
    for (i, (name_a, da)) in digests.iter().enumerate() {
        for (name_b, db) in digests.iter().skip(i + 1) {
            assert_ne!(
                da, db,
                "{name_a} and {name_b} produced identical digests — the \
                 policy knob is not reaching the engine"
            );
        }
    }
}

#[test]
fn random_access_workload_is_deterministic_too() {
    // SeqFault barely consults the RNG; also pin down a random-access
    // workload (GUPS, zipfian updates) where per-op RNG draws drive the
    // access stream.
    let run = |seed: u64| {
        let mut cfg = RunConfig::new(
            SystemConfig::mage_lib(),
            WorkloadKind::Gups,
            4,
            4096,
            0.5,
        );
        cfg.ops_per_thread = 2000;
        cfg.seed = seed;
        digest(&run_batch(&cfg))
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
