//! End-to-end determinism: a scaled-down fig05-style sweep run twice
//! with the same seed must produce bit-identical statistics, and a
//! different seed must produce different ones. This is the property the
//! whole evaluation rests on (and the one simlint + the deterministic
//! executor exist to protect).

use mage::{EvictionPolicyKind, PrefetchPolicy, RetryPolicy, SystemConfig};
use mage_fabric::FaultPlan;
use mage_workloads::runner::{run_batch, RunConfig, RunReport};
use mage_workloads::WorkloadKind;

/// Digest of every statistic a report carries, down to the exact f64
/// bits. Floats go through `to_bits()` so "bit-identical" means exactly
/// that, not "equal within epsilon".
fn digest(r: &RunReport) -> Vec<u64> {
    let mut d = vec![
        r.runtime_ns,
        r.total_ops,
        r.major_faults,
        r.fault_mean_ns.to_bits(),
        r.fault_p50_ns,
        r.fault_p99_ns,
        r.sync_evictions,
        r.evicted_pages,
        r.shootdown_mean_ns.to_bits(),
        r.ipi_mean_ns.to_bits(),
        r.read_gbps.to_bits(),
        r.write_gbps.to_bits(),
        r.prefetches,
        r.evict_cancels,
        r.free_wait_count,
        r.free_wait_mean_ns.to_bits(),
        r.transfer_retries,
        r.transfer_failures,
        r.aborted_faults,
        r.requeued_victims,
        r.re_faults,
        r.ghost_hits,
        r.executor_polls,
    ];
    d.extend(r.faults_per_thread.iter().copied());
    d.extend(r.timeline.iter().flat_map(|&(t, v)| [t, v]));
    d
}

/// Scaled-down fig05 sweep: three systems × two thread counts, with and
/// without eviction pressure, all folded into one digest.
fn sweep(seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for system in [
        SystemConfig::hermit(),
        SystemConfig::dilos(),
        SystemConfig::mage_lib(),
    ] {
        for threads in [2usize, 4] {
            for local_ratio in [1.0f64, 0.5] {
                let mut s = system.clone();
                s.prefetch = PrefetchPolicy::None;
                let wss = 2048u64;
                let mut cfg =
                    RunConfig::new(s, WorkloadKind::SeqFault, threads, wss, local_ratio);
                cfg.all_remote = true;
                cfg.ops_per_thread = wss / threads as u64;
                cfg.seed = seed;
                out.extend(digest(&run_batch(&cfg)));
            }
        }
    }
    // SeqFault is a deterministic access stream regardless of seed; add
    // one zipfian GUPS run so the sweep digest is also seed-sensitive.
    let mut cfg = RunConfig::new(SystemConfig::mage_lib(), WorkloadKind::Gups, 2, 2048, 0.5);
    cfg.ops_per_thread = 1000;
    cfg.seed = seed;
    out.extend(digest(&run_batch(&cfg)));
    out
}

#[test]
fn same_seed_is_bit_identical() {
    let a = sweep(0xDEAD_BEEF);
    let b = sweep(0xDEAD_BEEF);
    assert_eq!(a, b, "same seed must reproduce every statistic bit-for-bit");
}

#[test]
fn different_seeds_differ() {
    // A randomized workload's statistics must actually depend on the
    // seed; identical digests would mean the seed is ignored.
    let a = sweep(1);
    let b = sweep(2);
    assert_ne!(a, b, "different seeds must perturb the statistics");
}

/// One faulty-link sweep: two systems under a degraded link plus a
/// crash-window plan, folded into a digest. The fault plan's own seed is
/// a parameter so both halves of the determinism contract can be pinned.
fn faulty_sweep(fault_seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for system in [SystemConfig::mage_lib(), SystemConfig::hermit()] {
        for plan in [
            FaultPlan::degraded_link(fault_seed),
            FaultPlan {
                seed: fault_seed,
                error_rate: 0.2,
                crash_period_ns: 500_000,
                crash_duration_ns: 50_000,
                crash_rate: 0.5,
                ..FaultPlan::none()
            },
        ] {
            let mut s = system.clone().with_faults(plan).with_retry(RetryPolicy {
                max_retries: 3,
                ..RetryPolicy::default()
            });
            s.prefetch = PrefetchPolicy::None;
            let mut cfg = RunConfig::new(s, WorkloadKind::Gups, 2, 2048, 0.5);
            cfg.ops_per_thread = 500;
            cfg.seed = 13;
            out.extend(digest(&run_batch(&cfg)));
        }
    }
    out
}

#[test]
fn same_fault_plan_is_bit_identical() {
    // Injected errors, spikes, brownouts and crash windows must all be
    // functions of the fault seed alone: the whole chaos methodology
    // (replay a failing seed) rests on this.
    let a = faulty_sweep(0xFA417);
    let b = faulty_sweep(0xFA417);
    assert_eq!(
        a, b,
        "same fault seed must reproduce every statistic bit-for-bit"
    );
}

#[test]
fn different_fault_seeds_diverge() {
    // The injector must actually consume its seed: identical digests
    // under different fault seeds would mean faults are not injected or
    // not seeded.
    let a = faulty_sweep(0xFA417);
    let b = faulty_sweep(0xFA418);
    assert_ne!(a, b, "different fault seeds must perturb the statistics");
}

#[test]
fn every_eviction_policy_is_bit_deterministic() {
    // The policy zoo must uphold the same-seed contract: per policy,
    // two runs agree bit-for-bit, and policies genuinely diverge from
    // one another on a workload with eviction pressure.
    let zoo = [
        EvictionPolicyKind::SecondChance,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::AgingClock { hot_rounds: 3 },
        EvictionPolicyKind::S3Fifo,
        EvictionPolicyKind::ApproxLru,
    ];
    let run = |kind: EvictionPolicyKind, seed: u64| {
        let system = SystemConfig::mage_lib().with_eviction_policy(kind);
        let mut cfg = RunConfig::new(system, WorkloadKind::Gups, 4, 4096, 0.5);
        cfg.ops_per_thread = 1500;
        cfg.seed = seed;
        digest(&run_batch(&cfg))
    };
    let mut digests = Vec::new();
    for kind in zoo {
        let a = run(kind, 11);
        let b = run(kind, 11);
        assert_eq!(a, b, "{}: same seed must be bit-identical", kind.name());
        assert_ne!(
            a,
            run(kind, 12),
            "{}: different seeds must perturb the statistics",
            kind.name()
        );
        digests.push((kind.name(), a));
    }
    for (i, (name_a, da)) in digests.iter().enumerate() {
        for (name_b, db) in digests.iter().skip(i + 1) {
            assert_ne!(
                da, db,
                "{name_a} and {name_b} produced identical digests — the \
                 policy knob is not reaching the engine"
            );
        }
    }
}

#[test]
fn random_access_workload_is_deterministic_too() {
    // SeqFault barely consults the RNG; also pin down a random-access
    // workload (GUPS, zipfian updates) where per-op RNG draws drive the
    // access stream.
    let run = |seed: u64| {
        let mut cfg = RunConfig::new(
            SystemConfig::mage_lib(),
            WorkloadKind::Gups,
            4,
            4096,
            0.5,
        );
        cfg.ops_per_thread = 2000;
        cfg.seed = seed;
        digest(&run_batch(&cfg))
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
