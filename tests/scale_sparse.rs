//! Sparse-metadata regression tests: the host-side cost of simulating a
//! huge machine must be proportional to what the workload *touches*,
//! never to the nominal capacity. Each test opens a 2^40-page (4 PiB)
//! address space, touches ~1k scattered pages, and pins every per-page
//! structure — page-table nodes, replica records, runner gauges — to an
//! O(touched) bound that a dense O(capacity) representation would miss
//! by nine orders of magnitude (these tests would also never finish
//! allocating it).

use std::rc::Rc;

use mage_far_memory::prelude::*;

/// 2^40 pages of 4 KiB = 4 PiB of simulated address space.
const SPACE: u64 = 1 << 40;

/// Golden-ratio scatter: consecutive indices land in distant radix
/// subtrees, the worst case for any structure that hopes touches
/// cluster.
fn scattered(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % SPACE
}

/// Page-table bound: one root plus at most one fresh node per level per
/// touched page (5-level radix ⇒ ≤ 4 interior + 1 leaf each).
fn pt_bound(touched: u64) -> u64 {
    1 + 5 * touched
}

/// Scattered touches through the replicated backend: a local cache much
/// smaller than the touch count forces evictions, so pages stream to
/// the backend and the replica table tracks them — and the replica
/// table, the page table, and the engine all stay O(touched).
#[test]
fn replicated_4pib_space_costs_o_touched() {
    const TOUCHED: u64 = 1_000;
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: 512,
        remote_pages: SPACE,
        tlb_entries: 512,
        seed: 11,
    };
    let engine = FarMemory::launch(
        sim.handle(),
        SystemConfig::mage_lib().with_replication(ReplicationConfig::default()),
        params,
    );
    let vma = engine.mmap(SPACE);
    engine.populate_lazy(&vma);

    let mut joins = Vec::new();
    for t in 0..4u64 {
        let engine = Rc::clone(&engine);
        let h = sim.handle();
        let base = vma.start_vpn;
        joins.push(sim.spawn(async move {
            for i in (t..TOUCHED).step_by(4) {
                engine.access(CoreId(t as u32), base + scattered(i), true).await;
                h.sleep(150).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();
    sim.run();

    let pt_nodes = engine.page_table().node_count() as u64;
    let replicas = engine.backend().replica_entries();
    assert!(
        pt_nodes <= pt_bound(TOUCHED),
        "page table grew {pt_nodes} nodes for {TOUCHED} touches (bound {})",
        pt_bound(TOUCHED)
    );
    assert!(
        replicas > 0,
        "a 512-frame cache under 1000 touches must have evicted to the backend"
    );
    assert!(
        replicas <= TOUCHED,
        "replica table tracks {replicas} pages but only {TOUCHED} were touched"
    );
    // Peak metadata across the structures this run can grow.
    let meta = pt_nodes + replicas;
    assert!(
        meta <= 6 * TOUCHED + 8,
        "metadata {meta} is not O(touched = {TOUCHED})"
    );
}

/// The same property through the batch runner: `lazy_populate` makes
/// setup O(1), and the report's sparse gauges stay O(touched) even
/// though the configured working set is the full 2^40 pages.
#[test]
fn runner_lazy_populate_over_4pib_reports_sparse_gauges() {
    let mut cfg = RunConfig::new(
        SystemConfig::mage_lib(),
        WorkloadKind::RandomGraph,
        4,
        SPACE,
        0.5,
    );
    cfg.lazy_populate = true;
    cfg.ops_per_thread = 256;
    let r = run_batch(&cfg);

    assert!(r.total_ops >= 1_024, "runner completed its ops");
    // 4 threads × 256 ops touch at most 1024 distinct pages.
    let touched_max = 1_024u64;
    assert!(
        r.pt_nodes > 0 && r.pt_nodes <= pt_bound(touched_max),
        "pt_nodes {} outside (0, {}]",
        r.pt_nodes,
        pt_bound(touched_max)
    );
    // No replication configured: the gauge must report zero rather than
    // inventing entries.
    assert_eq!(r.replica_entries, 0);
}

/// Replication through the runner: the end-to-end path (mmap → lazy
/// populate → faults → evictions → replicated writeback) keeps the
/// replica table bounded by distinct touches.
#[test]
fn runner_replicated_sparse_space_bounds_replica_entries() {
    let mut cfg = RunConfig::new(
        SystemConfig::mage_lib().with_replication(ReplicationConfig::default()),
        WorkloadKind::RandomGraph,
        4,
        SPACE,
        0.5,
    );
    cfg.lazy_populate = true;
    cfg.ops_per_thread = 256;
    let r = run_batch(&cfg);

    let touched_max = 1_024u64;
    assert!(r.pt_nodes <= pt_bound(touched_max));
    assert!(
        r.replica_entries <= touched_max,
        "replica entries {} exceed the {} distinct pages this run can touch",
        r.replica_entries,
        touched_max
    );
}
