//! The workspace must be simlint-clean: `cargo test` fails if any
//! simulation crate reintroduces wall-clock time, host threads, hash
//! collections, std::sync primitives, external RNGs, or an unseeded RNG
//! constructor (see DESIGN.md "Determinism rules").

use std::path::Path;

#[test]
fn workspace_has_no_determinism_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = simlint::lint_workspace(root).expect("workspace scan");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("{v}");
        }
        panic!(
            "simlint: {} violation(s) — fix them or add a justified \
             `// simlint: allow(<rule>): <why>` directive",
            violations.len()
        );
    }
}
