//! Differential test battery for the eviction-policy zoo: every
//! `EvictionPolicyKind` must drive the engine through seeded random
//! sweeps while preserving the settlement identity, frame conservation
//! and the no-lost-page invariant — and per policy, same-seed runs must
//! be bit-identical. The battery is differential: all policies run the
//! *same* seeded access mix on the *same* machine shape, so a policy
//! that corrupts shared engine state (rather than merely choosing
//! different victims) fails here even if it passes its unit tests.

use std::rc::Rc;

use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use mage_far_memory::sim::rng;

fn zoo() -> [EvictionPolicyKind; 5] {
    [
        EvictionPolicyKind::SecondChance,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::AgingClock { hot_rounds: 3 },
        EvictionPolicyKind::S3Fifo,
        EvictionPolicyKind::ApproxLru,
    ]
}

/// Statistics that must be reproduced bit-for-bit by a same-seed rerun.
#[derive(Debug, PartialEq, Eq)]
struct RunDigest {
    virtual_ns: u64,
    polls: u64,
    major_faults: u64,
    evicted: u64,
    re_faults: u64,
    ghost_hits: u64,
    resident: u64,
    free: u64,
}

/// Seeded random access mix under eviction pressure; checks the safety
/// invariants and returns a digest for the determinism half.
fn run_policy(
    kind: EvictionPolicyKind,
    seed: u64,
    threads: u32,
    local_pages: u64,
    wss_pages: u64,
    ops: u32,
) -> RunDigest {
    let label = kind.name();
    let system = SystemConfig::mage_lib().with_eviction_policy(kind);
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(threads + 6),
        app_threads: threads as usize,
        local_pages,
        remote_pages: wss_pages + 512,
        tlb_entries: 128,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(wss_pages);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..threads {
        let e = Rc::clone(&engine);
        joins.push(sim.spawn(async move {
            let stream = rng::stream(seed, t as u64);
            for _ in 0..ops {
                let page = stream.next_below(wss_pages);
                let write = stream.next_below(4) == 0;
                e.access(CoreId(t), vma.start_vpn + page, write).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });

    // No-lost-page: after the churn, every page of the region must still
    // be reachable (present locally or faultable from its remote slot).
    let e = Rc::clone(&engine);
    let v = vma.clone();
    let reachable = sim.block_on(async move {
        let mut ok = 0u64;
        for i in 0..v.pages {
            match e.access(CoreId(0), v.start_vpn + i, false).await {
                Access::Failed { .. } => {}
                _ => ok += 1,
            }
        }
        ok
    });
    assert_eq!(reachable, wss_pages, "{label}: pages lost after churn");
    engine.shutdown();

    let s = engine.stats();
    // Settlement identity: every unmapped page settles as exactly one of
    // evicted, sync-evicted or cancelled (in-flight pages at shutdown
    // account for the slack).
    let settled =
        s.evicted_pages.get() + s.sync_evicted_pages.get() + s.evict_cancelled_pages.get();
    assert!(
        settled <= s.unmapped_pages.get(),
        "{label}: settled {settled} > unmapped {}",
        s.unmapped_pages.get()
    );
    // Frame conservation: residency plus free frames never exceeds the
    // machine's local memory.
    let resident = engine.accounting().resident_pages();
    let free = engine.allocator().free_frames();
    assert!(
        resident + free <= local_pages,
        "{label}: resident {resident} + free {free} over-commits {local_pages}"
    );
    // Ghost-counter sanity: every re-fault is a ghost hit.
    assert!(
        s.ghost_hits.get() >= s.re_faults.get(),
        "{label}: re_faults {} > ghost_hits {}",
        s.re_faults.get(),
        s.ghost_hits.get()
    );
    assert!(
        s.evicted_pages.get() > 0,
        "{label}: no eviction pressure — the battery tested nothing"
    );
    RunDigest {
        virtual_ns: sim.handle().now().as_nanos(),
        polls: sim.polls(),
        major_faults: s.major_faults.get(),
        evicted: s.evicted_pages.get() + s.sync_evicted_pages.get(),
        re_faults: s.re_faults.get(),
        ghost_hits: s.ghost_hits.get(),
        resident,
        free,
    }
}

/// Every policy survives seeded sweeps over two machine shapes.
#[test]
fn policy_zoo_preserves_invariants_under_seeded_sweeps() {
    for (seed, threads, local, wss, ops) in
        [(3u64, 4u32, 512u64, 2_048u64, 2_000u32), (0xBEEF, 2, 768, 1_536, 1_500)]
    {
        for kind in zoo() {
            run_policy(kind, seed, threads, local, wss, ops);
        }
    }
}

/// Per policy: the same seed reproduces every statistic bit-for-bit,
/// and a different seed does not.
#[test]
fn each_policy_is_bit_identical_under_same_seed() {
    for kind in zoo() {
        let a = run_policy(kind, 77, 4, 512, 2_048, 1_500);
        let b = run_policy(kind, 77, 4, 512, 2_048, 1_500);
        assert_eq!(a, b, "{}: same-seed runs diverged", kind.name());
        let c = run_policy(kind, 78, 4, 512, 2_048, 1_500);
        assert_ne!(a, c, "{}: seed ignored", kind.name());
    }
}

/// Differential check: on one fixed seed and shape, the access total is
/// policy-independent (the application does the same work), while the
/// schedules genuinely differ between policies (the knob reaches the
/// engine).
#[test]
fn policies_agree_on_work_but_diverge_on_schedule() {
    let mut digests: Vec<(&'static str, RunDigest)> = Vec::new();
    for kind in zoo() {
        digests.push((kind.name(), run_policy(kind, 55, 4, 512, 2_048, 1_500)));
    }
    for (i, (name_a, da)) in digests.iter().enumerate() {
        for (name_b, db) in digests.iter().skip(i + 1) {
            assert_ne!(
                da, db,
                "{name_a} vs {name_b}: identical digests — policy swap is a no-op"
            );
        }
    }
}
