//! Property-based integration tests: random machine shapes and access
//! mixes preserve the engine's safety and accounting invariants.

use std::rc::Rc;

use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use proptest::prelude::*;

/// Drives a random access mix on a random machine and returns
/// (major_faults, evicted, resident, free, local_pages).
fn stress(
    system: SystemConfig,
    threads: u32,
    local_pages: u64,
    wss_pages: u64,
    ops: u32,
    seed: u64,
) -> (u64, u64, u64, u64) {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(threads + 6),
        app_threads: threads as usize,
        local_pages,
        remote_pages: wss_pages + 512,
        tlb_entries: 128,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(wss_pages);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..threads {
        let e = Rc::clone(&engine);
        joins.push(sim.spawn(async move {
            let mut x = seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15);
            for _ in 0..ops {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let page = (x >> 33) % wss_pages;
                e.access(CoreId(t), vma.start_vpn + page, x % 5 == 0).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();
    (
        engine.stats().major_faults.get(),
        engine.stats().evicted_pages.get() + engine.stats().sync_evicted_pages.get(),
        engine.accounting().resident_pages(),
        engine.allocator().free_frames(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every system and random shape: runs terminate (no deadlock),
    /// frames are conserved, and residency never exceeds the quota.
    #[test]
    fn engine_invariants_hold(
        sys_idx in 0usize..4,
        threads in 1u32..9,
        local_frac in 3u64..9,     // local = wss * frac / 10
        wss_pages in 2_000u64..6_000,
        ops in 500u32..1_500,
        seed in 0u64..1_000_000,
    ) {
        let system = match sys_idx {
            0 => SystemConfig::mage_lib(),
            1 => SystemConfig::mage_lnx(),
            2 => SystemConfig::dilos(),
            _ => SystemConfig::hermit(),
        };
        let local_pages = (wss_pages * local_frac / 10).max(600);
        let (faults, evicted, resident, free) =
            stress(system, threads, local_pages, wss_pages, ops, seed);

        // Terminated (this line being reached) and produced work.
        prop_assert!(faults + evicted < u64::MAX);
        // No over-commit: resident + free never exceeds the quota.
        prop_assert!(
            resident + free <= local_pages,
            "resident {} + free {} > quota {}", resident, free, local_pages
        );
        // No massive leak: the unaccounted slack is bounded by the
        // eviction pipeline's in-flight capacity.
        let slack = local_pages - (resident + free);
        prop_assert!(
            slack <= 4 * 256 * 3 + 64,
            "{} frames unaccounted", slack
        );
    }

    /// Determinism: same shape, same seed → identical outcome for a
    /// randomly chosen configuration.
    #[test]
    fn determinism_for_random_shapes(
        threads in 1u32..6,
        wss_pages in 2_000u64..4_000,
        seed in 0u64..100_000,
    ) {
        let a = stress(SystemConfig::mage_lib(), threads, wss_pages / 2, wss_pages, 600, seed);
        let b = stress(SystemConfig::mage_lib(), threads, wss_pages / 2, wss_pages, 600, seed);
        prop_assert_eq!(a, b);
    }
}
