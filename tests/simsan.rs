//! simsan integration suite: the happens-before race detector over the
//! full engine (DESIGN.md §10).
//!
//! - a full multi-threaded churn run is race-free with the detector on
//!   (the engine's lock/wake/publish protocol really does order every
//!   plain PTE access);
//! - the detector never perturbs: an enabled run produces a bit-for-bit
//!   identical stats-and-schedule digest to a disabled one;
//! - the planted `break_publish` bug (an unlocked PTE re-publish after
//!   batch settlement) is caught deterministically under both the Fifo
//!   and SeededRandom exploration policies, with a stable same-seed
//!   report naming both access sites;
//! - the mage-check shrinker minimizes the racy cell and emits a
//!   one-line `MAGE_CHECK_SEED=…` reproducer.

use std::rc::Rc;

use mage_check::{run_cell, shrink, Cell, CheckOptions, PolicyKind, Violation};
use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use mage_far_memory::sim::race::RaceMode;

/// Stats-and-schedule digest of a fixed multi-threaded churn workload
/// (the same shape tests/check_explore.rs and tests/trace.rs pin).
fn churn_digest(sim: Simulation) -> [u64; 10] {
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: 256,
        remote_pages: 4_096,
        tlb_entries: 64,
        seed: 11,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let vma = engine.mmap(512);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let e = Rc::clone(&engine);
        let start = vma.start_vpn;
        joins.push(sim.spawn(async move {
            for i in 0..384u64 {
                let vpn = start + (i * 7 + t * 13) % 512;
                e.access(CoreId(t as u32), vpn, i % 3 == 0).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();
    let s = engine.stats();
    [
        s.accesses.get(),
        s.tlb_hits.get(),
        s.minor_walks.get(),
        s.major_faults.get(),
        s.evicted_pages.get(),
        s.sync_evicted_pages.get(),
        s.unmapped_pages.get(),
        s.evict_cancelled_pages.get(),
        sim.polls(),
        sim.handle().now().as_nanos(),
    ]
}

/// A full churn run — four app threads hammering a 2:1 overcommitted
/// working set against four evictors — finishes with zero races: every
/// plain PTE write really is ordered by the lock-bit protocol, the
/// evicting-map handoff or a wake edge. (In Panic mode a race would
/// abort the run; the explicit count pins the detector was live.)
#[test]
fn full_churn_run_is_race_free_under_the_detector() {
    let sim = Simulation::new();
    let det = sim.enable_race_detection();
    let digest = churn_digest(sim);
    assert!(digest[3] > 0, "the run must exercise major faults");
    assert_eq!(det.race_count(), 0, "clean engine must be race-free");
    assert!(
        det.atomic_ops() > 0,
        "the run must classify TLB/stats traffic as atomic"
    );
}

/// Detector-never-perturbs: the enabled digest is bit-for-bit the
/// disabled one — same stats, same poll count, same final virtual time.
/// (tests/seams.rs pins the disabled schedule's absolute values, so
/// together these prove simsan leaves the golden schedules untouched.)
#[test]
fn detector_does_not_perturb_the_schedule() {
    let plain = churn_digest(Simulation::new());
    let sim = Simulation::new();
    sim.enable_race_detection();
    let shadowed = churn_digest(sim);
    assert_eq!(plain, shadowed, "enabling simsan changed the schedule");
}

fn racy_opts() -> CheckOptions {
    CheckOptions {
        wss_pages: 192,
        local_pages: 96,
        phases: 1,
        break_publish: true,
        ..CheckOptions::default()
    }
}

fn race_report(cell: &Cell) -> String {
    match run_cell(cell, &racy_opts()) {
        Err(Violation::DataRace { report }) => report,
        other => panic!("expected a data race from {cell:?}, got {other:?}"),
    }
}

/// The planted unlocked re-publish is caught under the default FIFO
/// schedule and under seeded-random exploration, and the report names
/// the racing region, both access sites (file:line) and both tasks'
/// clocks. Running the same cell twice yields the identical report:
/// detection is as deterministic as the simulator itself.
#[test]
fn planted_publish_race_is_caught_under_fifo_and_random() {
    for policy in [PolicyKind::Fifo, PolicyKind::SeededRandom] {
        let cell = Cell {
            policy,
            ..Cell::default()
        };
        let report = race_report(&cell);
        assert!(report.contains("data race on pte["), "{report}");
        assert!(
            report.contains("batch.rs:"),
            "report must cite the broken re-publish site: {report}"
        );
        assert!(report.contains("clock {"), "clocks rendered: {report}");
        let again = race_report(&cell);
        assert_eq!(report, again, "same seed, same race, same report");
    }
}

/// The racy cell shrinks like any other violation: the minimal cell
/// still races and the result is a single `MAGE_CHECK_SEED=…` line that
/// replays it (via `MAGE_CHECK_BREAK=publish replay_cell`).
#[test]
fn publish_race_shrinks_to_a_one_line_repro() {
    let failing = Cell {
        seed: 5,
        plan: 0,
        ops: 256,
        threads: 4,
        policy: PolicyKind::SeededRandom,
    };
    let opts = racy_opts();
    let shrunk = shrink(&failing, &opts, 48);
    assert_eq!(shrunk.violation.name(), "data-race", "got {}", shrunk.violation);
    assert!(shrunk.cell.ops <= failing.ops);
    assert!(shrunk.cell.threads <= failing.threads);
    let replayed = run_cell(&shrunk.cell, &opts).unwrap_err();
    assert_eq!(replayed.name(), "data-race");
    let line = shrunk.cell.repro_line();
    assert_eq!(line.lines().count(), 1, "repro must be one line");
    assert!(line.starts_with("MAGE_CHECK_SEED="));
    println!("MAGE_CHECK_BREAK=publish {line}");
}

/// Panic mode (the default, and what `MAGE_SIMSAN=1` suite runs use)
/// fails fast: the planted race aborts the run with the rendered report
/// as the panic message.
#[test]
fn panic_mode_aborts_on_the_planted_race() {
    let result = std::panic::catch_unwind(|| {
        let sim = Simulation::new();
        let det = sim.enable_race_detection();
        det.set_mode(RaceMode::Panic);
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages: 96,
            remote_pages: 288,
            tlb_entries: 64,
            seed: 1,
        };
        let cfg = SystemConfig::mage_lib()
            .with_eviction_batch(16)
            .with_broken_publish();
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(192);
        engine.populate(&vma);
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let e = Rc::clone(&engine);
            let start = vma.start_vpn;
            joins.push(sim.spawn(async move {
                for i in 0..256u64 {
                    let vpn = start + (i * 11 + t * 29) % 192;
                    e.access(CoreId(t as u32), vpn, i % 4 == 0).await;
                }
            }));
        }
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
    });
    let payload = result.expect_err("the planted race must panic the run");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the rendered report");
    assert!(msg.contains("simsan: data race on pte["), "{msg}");
}
